"""Tests for the corpus builders."""

import numpy as np
import pytest

from repro.datasets.corpora import (
    CORPORA,
    CREMAD_SPEC,
    EMOVO_SPEC,
    RAVDESS_SPEC,
    build_corpus,
)


class TestSpecs:
    def test_paper_inventory(self):
        assert RAVDESS_SPEC.paper_size == 7356
        assert RAVDESS_SPEC.n_actors == 24
        assert len(RAVDESS_SPEC.emotions) == 8
        assert EMOVO_SPEC.n_sentences == 14
        assert EMOVO_SPEC.language == "Italian"
        assert CREMAD_SPEC.n_actors == 91
        assert len(CREMAD_SPEC.emotions) == 6

    def test_registry(self):
        assert set(CORPORA) == {"RAVDESS", "EMOVO", "CREMA-D"}

    def test_difficulty_knobs_ordered(self):
        """CREMA-D must be configured hardest, RAVDESS easiest."""
        assert CREMAD_SPEC.noise_level > EMOVO_SPEC.noise_level > RAVDESS_SPEC.noise_level
        assert CREMAD_SPEC.profile_blend > EMOVO_SPEC.profile_blend >= RAVDESS_SPEC.profile_blend


class TestBuildCorpus:
    def test_shapes_and_labels(self, small_corpus):
        n_classes = len(EMOVO_SPEC.emotions)
        assert small_corpus.x.shape[0] == 10 * n_classes
        assert small_corpus.x.ndim == 3
        assert set(np.unique(small_corpus.y)) == set(range(n_classes))
        assert small_corpus.actors.shape[0] == small_corpus.x.shape[0]

    def test_balanced_classes(self, small_corpus):
        counts = np.bincount(small_corpus.y)
        assert np.all(counts == 10)

    def test_deterministic(self):
        a = build_corpus(EMOVO_SPEC, n_per_class=2, seed=5)
        b = build_corpus(EMOVO_SPEC, n_per_class=2, seed=5)
        assert np.array_equal(a.x, b.x)

    def test_seed_changes_data(self):
        a = build_corpus(EMOVO_SPEC, n_per_class=2, seed=5)
        b = build_corpus(EMOVO_SPEC, n_per_class=2, seed=6)
        assert not np.array_equal(a.x, b.x)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            build_corpus(EMOVO_SPEC, n_per_class=0)

    def test_finite_features(self, small_corpus):
        assert np.isfinite(small_corpus.x).all()


class TestSplitAndNormalize:
    def test_split_stratified(self, small_corpus):
        x_train, y_train, x_test, y_test = small_corpus.split(test_fraction=0.3)
        assert x_train.shape[0] + x_test.shape[0] == small_corpus.x.shape[0]
        test_counts = np.bincount(y_test, minlength=small_corpus.n_classes)
        assert np.all(test_counts == 3)

    def test_split_disjoint(self, small_corpus):
        x_train, _, x_test, _ = small_corpus.split()
        # No sample may appear in both halves.
        train_keys = {hash(x.tobytes()) for x in x_train}
        test_keys = {hash(x.tobytes()) for x in x_test}
        assert not train_keys & test_keys

    def test_split_invalid_fraction(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.split(test_fraction=0.0)

    def test_normalized_statistics(self, small_corpus):
        normalized = small_corpus.normalized()
        assert abs(normalized.x.mean()) < 1e-9
        per_feature_std = normalized.x.std(axis=(0, 1))
        assert np.allclose(per_feature_std, 1.0, atol=1e-6)

    def test_normalized_preserves_labels(self, small_corpus):
        normalized = small_corpus.normalized()
        assert np.array_equal(normalized.y, small_corpus.y)
