"""SLO declaration, evaluation, and budget/burn math."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    BurnWindow,
    SLObjective,
    SnapshotHistory,
    evaluate_slo,
    evaluate_slos,
    render_slo_report,
)


def latency_slo(threshold=0.5, target=0.95):
    return SLObjective(name="lat", kind="latency", metric="latency_s",
                       threshold=threshold, target=target)


def ratio_slo(threshold=0.05):
    return SLObjective(name="shed", kind="ratio", metric="bad",
                       denominator="total", threshold=threshold)


class TestSLObjectiveValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", metric="m",
                        threshold=0.1)

    def test_ratio_needs_denominator(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="ratio", metric="m", threshold=0.1)

    def test_latency_target_range(self):
        with pytest.raises(ValueError):
            latency_slo(target=0.0)
        with pytest.raises(ValueError):
            latency_slo(target=1.2)

    def test_negative_threshold(self):
        with pytest.raises(ValueError):
            latency_slo(threshold=-1.0)


class TestLatencyObjectives:
    def test_pass_with_budget_math(self):
        reg = MetricsRegistry()
        # 99 fast samples, 1 slow: bad fraction 1%, budget 5% → burn 0.2
        for _ in range(99):
            reg.observe("latency_s", 0.01)
        reg.observe("latency_s", 2.0)
        verdict = evaluate_slo(reg, latency_slo(threshold=0.5, target=0.95))
        assert verdict.ok
        assert verdict.samples == 100
        assert verdict.bad_fraction == pytest.approx(0.01)
        assert verdict.error_budget == pytest.approx(0.05)
        assert verdict.burn_rate == pytest.approx(0.2)
        assert verdict.budget_remaining == pytest.approx(0.8)

    def test_fail_when_budget_overspent(self):
        reg = MetricsRegistry()
        for _ in range(80):
            reg.observe("latency_s", 0.01)
        for _ in range(20):
            reg.observe("latency_s", 2.0)
        verdict = evaluate_slo(reg, latency_slo(threshold=0.5, target=0.95))
        assert not verdict.ok
        assert verdict.bad_fraction == pytest.approx(0.2)
        assert verdict.burn_rate == pytest.approx(4.0)
        assert verdict.budget_remaining == 0.0

    def test_empty_histogram_passes(self):
        verdict = evaluate_slo(MetricsRegistry(), latency_slo())
        assert verdict.ok
        assert verdict.samples == 0
        assert verdict.bad_fraction == 0.0
        assert verdict.value == 0.0


class TestRatioObjectives:
    def test_pass_and_fail(self):
        reg = MetricsRegistry()
        reg.inc("bad", 2)
        reg.inc("total", 100)
        verdict = evaluate_slo(reg, ratio_slo(threshold=0.05))
        assert verdict.ok
        assert verdict.value == pytest.approx(0.02)
        assert verdict.burn_rate == pytest.approx(0.4)
        assert not evaluate_slo(reg, ratio_slo(threshold=0.01)).ok

    def test_zero_denominator_is_clean(self):
        reg = MetricsRegistry()
        reg.inc("bad", 5)  # numerator without traffic: nothing to judge
        verdict = evaluate_slo(reg, ratio_slo())
        assert verdict.ok
        assert verdict.bad_fraction == 0.0
        assert verdict.samples == 0

    def test_zero_budget_burn(self):
        reg = MetricsRegistry()
        reg.inc("total", 10)
        zero = SLObjective(name="never", kind="ratio", metric="bad",
                           denominator="total", threshold=0.0)
        assert evaluate_slo(reg, zero).burn_rate == 0.0
        reg.inc("bad", 1)
        verdict = evaluate_slo(reg, zero)
        assert verdict.burn_rate == float("inf")
        assert verdict.budget_remaining == 0.0
        assert not verdict.ok


class TestDefaultsAndReport:
    def test_defaults_evaluate_in_declared_order(self):
        verdicts = evaluate_slos(MetricsRegistry())
        assert [v.objective.name for v in verdicts] == [
            o.name for o in DEFAULT_SLOS
        ]

    def test_default_names_cover_the_stack(self):
        names = {o.name for o in DEFAULT_SLOS}
        assert names == {"serve-p95-latency", "emotion-staleness",
                         "shed-rate"}

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.observe("latency_s", 0.1)
        d = evaluate_slo(reg, latency_slo()).to_dict()
        json.dumps(d)
        assert d["name"] == "lat"
        assert d["ok"] is True
        assert {"bad_fraction", "error_budget", "burn_rate",
                "budget_remaining", "samples"} <= set(d)

    def test_render_report(self):
        reg = MetricsRegistry()
        for _ in range(10):
            reg.observe("latency_s", 0.01)
        reg.inc("bad", 9)
        reg.inc("total", 10)
        verdicts = [
            evaluate_slo(reg, latency_slo()),
            evaluate_slo(reg, ratio_slo()),
        ]
        text = render_slo_report(verdicts)
        assert "PASS" in text and "FAIL" in text
        assert "burn=" in text and "remaining=" in text
        assert render_slo_report([]) == "(no objectives declared)"

    def test_render_report_inf_burn(self):
        reg = MetricsRegistry()
        reg.inc("bad", 1)
        reg.inc("total", 10)
        zero = SLObjective(name="never", kind="ratio", metric="bad",
                           denominator="total", threshold=0.0)
        assert "burn=inf" in render_slo_report([evaluate_slo(reg, zero)])


class TestBurnWindow:
    """Trailing-window burn: the control signal behind adaptive tiers."""

    def test_empty_window_is_no_evidence(self):
        window = BurnWindow((latency_slo(),), horizon_s=5.0)
        verdict = window.evaluate(latency_slo())
        assert verdict.ok is True
        assert verdict.burn_rate == 0.0
        assert verdict.samples == 0.0
        assert window.span_s == 0.0

    def test_single_sample_window_is_still_partial(self):
        reg = MetricsRegistry()
        for _ in range(10):
            reg.observe("latency_s", 9.0)  # terrible, but only one snapshot
        window = BurnWindow((latency_slo(),), horizon_s=5.0)
        assert window.sample(reg, 0.0) is True
        verdict = window.evaluate(latency_slo())
        assert verdict.ok is True and verdict.burn_rate == 0.0
        assert window.span_s == 0.0

    def test_min_interval_drops_rapid_samples(self):
        reg = MetricsRegistry()
        window = BurnWindow((latency_slo(),), horizon_s=5.0,
                            min_interval_s=0.25)
        assert window.sample(reg, 0.0) is True
        assert window.sample(reg, 0.1) is False
        assert window.sample(reg, 0.24) is False
        assert window.sample(reg, 0.25) is True

    def test_window_forgets_the_lifetime(self):
        """A bad past must not keep burning once the window slides past it."""
        reg = MetricsRegistry()
        window = BurnWindow((latency_slo(),), horizon_s=2.0,
                            min_interval_s=0.0)
        for _ in range(100):
            reg.observe("latency_s", 9.0)      # historical overload
        window.sample(reg, 0.0)
        for _ in range(100):
            reg.observe("latency_s", 0.01)     # now healthy
        window.sample(reg, 1.0)
        # Lifetime evaluation still sees 50% bad...
        assert evaluate_slo(reg, latency_slo()).ok is False
        # ...but samples past the bad stretch see only the healthy delta.
        window.sample(reg, 3.5)
        verdict = window.evaluate(latency_slo())
        assert verdict.ok is True
        assert verdict.burn_rate == 0.0

    def test_window_catches_a_fresh_spike(self):
        """The converse: a healthy lifetime must not hide a live spike."""
        reg = MetricsRegistry()
        window = BurnWindow((latency_slo(),), horizon_s=5.0,
                            min_interval_s=0.0)
        for _ in range(10000):
            reg.observe("latency_s", 0.01)     # long healthy history
        window.sample(reg, 0.0)
        for _ in range(50):
            reg.observe("latency_s", 2.0)      # the spike
        window.sample(reg, 1.0)
        # Lifetime: 50/10050 bad is within the 5% budget.
        assert evaluate_slo(reg, latency_slo()).ok is True
        verdict = window.evaluate(latency_slo())
        assert verdict.ok is False
        assert verdict.burn_rate == pytest.approx(20.0)
        assert verdict.samples == 50.0

    def test_ratio_objective_uses_counter_deltas(self):
        reg = MetricsRegistry()
        window = BurnWindow((ratio_slo(threshold=0.1),), horizon_s=5.0,
                            min_interval_s=0.0)
        reg.inc("bad", 100)
        reg.inc("total", 100)
        window.sample(reg, 0.0)
        reg.inc("total", 50)                    # 0 bad in the window
        window.sample(reg, 1.0)
        verdict = window.evaluate(ratio_slo(threshold=0.1))
        assert verdict.ok is True
        assert verdict.bad_fraction == 0.0
        assert verdict.samples == 50.0
        reg.inc("bad", 25)
        reg.inc("total", 50)
        window.sample(reg, 2.0)
        verdict = window.evaluate(ratio_slo(threshold=0.1))
        assert verdict.ok is False
        assert verdict.bad_fraction == pytest.approx(25 / 100)
        assert verdict.burn_rate == pytest.approx(2.5)

    def test_horizon_retires_old_samples_but_keeps_one_beyond(self):
        reg = MetricsRegistry()
        window = BurnWindow((latency_slo(),), horizon_s=5.0,
                            min_interval_s=0.0)
        for t in (0.0, 2.0, 4.0, 6.0, 8.0):
            window.sample(reg, t)
        # 0.0 retired (2.0 is >= 5.0 behind 8.0 is false; 0.0's successor
        # 2.0 must be >= horizon behind now for 0.0 to go: 8-2=6 >= 5).
        assert window.span_s == pytest.approx(6.0)

    def test_registry_reset_reads_as_empty_window(self):
        """Counter resets must not produce negative deltas or panic."""
        reg = MetricsRegistry()
        window = BurnWindow((ratio_slo(),), horizon_s=5.0,
                            min_interval_s=0.0)
        reg.inc("bad", 10)
        reg.inc("total", 100)
        window.sample(reg, 0.0)
        reg.reset()
        window.sample(reg, 1.0)
        verdict = window.evaluate(ratio_slo())
        assert verdict.ok is True
        assert verdict.bad_fraction == 0.0

    def test_burn_rate_by_name(self):
        window = BurnWindow((latency_slo(),), horizon_s=5.0)
        assert window.burn_rate("lat") == 0.0
        with pytest.raises(KeyError):
            window.burn_rate("no-such-objective")

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnWindow((latency_slo(),), horizon_s=0.0)
        with pytest.raises(ValueError):
            BurnWindow((latency_slo(),), min_interval_s=-1.0)


class TestSnapshotHistory:
    """One snapshot deque feeding any number of burn horizons."""

    def test_two_horizons_share_one_deque(self):
        reg = MetricsRegistry()
        history = SnapshotHistory((latency_slo(),), max_horizon_s=4.0,
                                  min_interval_s=0.0)
        fast = BurnWindow((latency_slo(),), horizon_s=1.0, history=history)
        slow = BurnWindow((latency_slo(),), horizon_s=4.0, history=history)
        fast.sample(reg, 0.0)                       # one deque: sample once
        for _ in range(100):
            reg.observe("latency_s", 0.01)          # healthy early traffic
        for t in (1.0, 2.0, 3.0):
            fast.sample(reg, t)
        for _ in range(50):
            reg.observe("latency_s", 2.0)           # fresh spike
        fast.sample(reg, 4.0)
        assert len(history) == 5
        # Both windows see the spike; the fast one sees it undiluted.
        fast_verdict = fast.evaluate(latency_slo())
        slow_verdict = slow.evaluate(latency_slo())
        assert fast_verdict.samples == 50.0
        assert fast_verdict.burn_rate == pytest.approx(20.0)
        assert slow_verdict.samples == 150.0
        assert slow_verdict.burn_rate == pytest.approx(20.0 * 50 / 150)

    def test_shared_verdicts_match_private_windows(self):
        """Sharing a history must not change any verdict."""
        reg = MetricsRegistry()
        history = SnapshotHistory((latency_slo(),), max_horizon_s=4.0,
                                  min_interval_s=0.0)
        shared = BurnWindow((latency_slo(),), horizon_s=2.0, history=history)
        private = BurnWindow((latency_slo(),), horizon_s=2.0,
                             min_interval_s=0.0)
        for t, latency in ((0.0, 0.01), (1.0, 2.0), (2.0, 0.01),
                           (3.0, 2.0), (4.0, 0.01)):
            for _ in range(20):
                reg.observe("latency_s", latency)
            shared.sample(reg, t)
            private.sample(reg, t)
        a = shared.evaluate(latency_slo())
        b = private.evaluate(latency_slo())
        assert (a.bad_fraction, a.samples) == (b.bad_fraction, b.samples)
        assert a.burn_rate == pytest.approx(b.burn_rate)

    def test_version_counts_kept_samples_and_clears(self):
        reg = MetricsRegistry()
        history = SnapshotHistory((latency_slo(),), max_horizon_s=4.0,
                                  min_interval_s=0.5)
        assert history.version == 0
        assert history.sample(reg, 0.0) is True
        assert history.version == 1
        assert history.sample(reg, 0.1) is False    # rate-limited
        assert history.version == 1
        assert history.sample(reg, 1.0) is True
        assert history.version == 2
        history.clear()
        assert history.version == 3
        assert len(history) == 0

    def test_precomputed_fast_path_agrees_with_bucket_fallback(self):
        """A tracked threshold (O(1) tuples) and an untracked one (bucket
        scan) over the same snapshots must agree exactly."""
        reg = MetricsRegistry()
        tracked = latency_slo(threshold=0.5)
        untracked = SLObjective(name="lat-strict", kind="latency",
                                metric="latency_s", threshold=0.1,
                                target=0.95)
        history = SnapshotHistory((tracked,), max_horizon_s=4.0,
                                  min_interval_s=0.0)
        mirror = SnapshotHistory((tracked, untracked), max_horizon_s=4.0,
                                 min_interval_s=0.0)
        latencies = [0.01, 0.09, 0.11, 0.3, 0.49, 0.51, 0.7, 2.0]
        for t in range(4):
            for latency in latencies:
                reg.observe("latency_s", latency)
            history.sample(reg, float(t))
            mirror.sample(reg, float(t))
        for objective in (tracked, untracked):
            scan = history.evaluate(objective)       # untracked → fallback
            fast = mirror.evaluate(objective)        # tracked → tuples
            assert scan.bad_fraction == fast.bad_fraction
            assert scan.samples == fast.samples
            assert scan.burn_rate == fast.burn_rate

    def test_track_adds_metrics_to_future_snapshots_only(self):
        reg = MetricsRegistry()
        history = SnapshotHistory((latency_slo(),), max_horizon_s=4.0,
                                  min_interval_s=0.0)
        reg.inc("bad", 10)
        reg.inc("total", 100)
        history.sample(reg, 0.0)                    # lacks the counters
        history.track((ratio_slo(),))
        reg.inc("total", 100)
        history.sample(reg, 1.0)
        # Window spans a snapshot without the metric: no evidence.
        verdict = history.evaluate(ratio_slo())
        assert verdict.samples == 0.0 and verdict.ok is True
        reg.inc("bad", 30)
        reg.inc("total", 100)
        history.sample(reg, 2.0)
        verdict = history.evaluate(ratio_slo(), horizon_s=1.0)
        assert verdict.samples == 100.0
        assert verdict.bad_fraction == pytest.approx(0.3)

    def test_burn_window_rejects_a_too_short_shared_history(self):
        history = SnapshotHistory((latency_slo(),), max_horizon_s=2.0)
        with pytest.raises(ValueError, match="retains less"):
            BurnWindow((latency_slo(),), horizon_s=5.0, history=history)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_horizon_s"):
            SnapshotHistory((latency_slo(),), max_horizon_s=0.0)
        with pytest.raises(ValueError, match="min_interval_s"):
            SnapshotHistory((latency_slo(),), min_interval_s=-0.1)
