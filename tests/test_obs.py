"""Tests for the observability subsystem (repro.obs) and its hooks."""

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry, SpanEvent, Timer, get_registry, timed
from repro.obs.registry import Histogram, labeled


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.5)
        assert reg.gauge("g").value == 7.5

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_quantiles_within_bucket_error(self):
        h = Histogram("h")
        values = np.arange(1, 1001, dtype=float)
        for v in values:
            h.observe(v)
        # Log buckets bound relative error; allow a loose 8% margin.
        assert h.quantile(0.5) == pytest.approx(500, rel=0.08)
        assert h.quantile(0.95) == pytest.approx(950, rel=0.08)
        assert h.quantile(0.99) == pytest.approx(990, rel=0.08)
        assert h.quantile(0.0) <= h.quantile(1.0) == 1000.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.summary()["count"] == 0

    def test_zero_samples(self):
        h = Histogram("h")
        for _ in range(10):
            h.observe(0.0)
        assert h.quantile(0.5) == 0.0
        assert h.max == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(2.0)
        assert set(h.summary()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }

    def test_single_sample_quantiles_are_exact(self):
        h = Histogram("h")
        h.observe(0.125)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 0.125
        assert h.min == h.max == 0.125

    def test_mixed_sign_low_quantile(self):
        h = Histogram("h")
        for v in [-3.0, -1.0, 1.0, 2.0]:
            h.observe(v)
        # Half the samples are negative: the median estimate must not
        # report a positive value, and q=0.25 sits in the underflow
        # bucket, bounded by [min, 0].
        assert h.quantile(0.25) <= 0.0
        assert h.quantile(0.25) >= h.min == -3.0
        assert h.quantile(1.0) == pytest.approx(2.0, rel=0.08)

    def test_all_negative_quantiles(self):
        h = Histogram("h")
        for v in [-5.0, -2.0, -1.0]:
            h.observe(v)
        assert h.quantile(0.0) == -5.0
        assert h.quantile(0.5) <= 0.0

    def test_quantile_zero_without_underflow_is_min(self):
        h = Histogram("h")
        for v in [3.0, 7.0, 9.0]:
            h.observe(v)
        assert h.quantile(0.0) == 3.0


class TestFractionBelow:
    def test_empty_and_extremes(self):
        h = Histogram("h")
        assert h.fraction_below(0.5) == 1.0  # no samples, no violations
        for v in [0.1, 0.2, 0.4]:
            h.observe(v)
        assert h.fraction_below(1.0) == 1.0  # threshold above max
        assert h.fraction_below(0.4) == 1.0  # threshold == max
        assert h.fraction_below(-0.1) == 0.0
        assert h.fraction_below(0.05) == 0.0  # below min

    def test_midrange_fraction(self):
        h = Histogram("h")
        for _ in range(90):
            h.observe(0.01)
        for _ in range(10):
            h.observe(5.0)
        assert h.fraction_below(0.5) == pytest.approx(0.9, abs=0.02)

    def test_counts_zero_bucket_exactly(self):
        h = Histogram("h")
        for _ in range(3):
            h.observe(0.0)
        h.observe(10.0)
        assert h.fraction_below(1.0) == pytest.approx(0.75)


class TestLabeled:
    def test_canonical_form(self):
        assert labeled("serve.stage_s", stage="dsp") == \
            'serve.stage_s{stage="dsp"}'

    def test_labels_sorted(self):
        assert labeled("m", b="2", a="1") == labeled("m", a="1", b="2")
        assert labeled("m", b="2", a="1") == 'm{a="1",b="2"}'

    def test_no_labels_passthrough(self):
        assert labeled("plain.name") == "plain.name"

    def test_distinct_series_in_registry(self):
        reg = MetricsRegistry()
        reg.observe(labeled("stage_s", stage="dsp"), 0.1)
        reg.observe(labeled("stage_s", stage="predict"), 0.2)
        histograms = reg.snapshot()["histograms"]
        assert 'stage_s{stage="dsp"}' in histograms
        assert 'stage_s{stage="predict"}' in histograms


class TestRegistryLifecycle:
    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.record_span(SpanEvent("s", 0.0, 1.0))
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert reg.spans == []

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}
        # uptime_s is freshened by every snapshot; reset rebases it.
        assert set(snap["gauges"]) == {"uptime_s"}

    def test_uptime_gauge_freshens_on_snapshot(self):
        reg = MetricsRegistry()
        first = reg.snapshot()["gauges"]["uptime_s"]
        second = reg.snapshot()["gauges"]["uptime_s"]
        assert 0.0 <= first <= second

    def test_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("layer.counter", 3)
        reg.observe("layer.latency_s", 0.5)
        parsed = json.loads(reg.to_json())
        assert parsed["counters"]["layer.counter"] == 3
        assert parsed["histograms"]["layer.latency_s"]["count"] == 1

    def test_render_text_mentions_metrics(self):
        reg = MetricsRegistry()
        reg.inc("some.counter")
        reg.set_gauge("some.gauge", 2.0)
        reg.observe("some.hist", 1.0)
        text = reg.render_text()
        for name in ("some.counter", "some.gauge", "some.hist"):
            assert name in text

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()

    def test_snapshot_concurrent_with_metric_creation(self):
        """Regression: snapshot()/render_text() while serve threads create
        fresh metric names raced the live dicts (``RuntimeError:
        dictionary changed size during iteration``)."""
        reg = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            i = 0
            try:
                # A bounded name pool: inserts keep happening (what the
                # race needs) without growing snapshot cost unboundedly.
                while not stop.is_set():
                    reg.inc(f"c.{i % 512}")
                    reg.set_gauge(f"g.{i % 512}", float(i))
                    reg.observe(f"h.{i % 512}", float(i))
                    i += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for n in range(50):
                snap = reg.snapshot()
                assert set(snap) == {"counters", "gauges", "histograms"}
                reg.render_text()
                if n % 10 == 9:
                    # Force re-creation so inserts keep racing the reads.
                    reg.reset()
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert errors == []

    def test_repro_obs_env_disables_process(self):
        """REPRO_OBS=0 starts the registry (and thus the tracer) disabled."""
        code = (
            "from repro.obs import get_registry\n"
            "from repro.obs.trace import NOOP_SPAN, get_tracer\n"
            "registry = get_registry()\n"
            "assert not registry.enabled\n"
            "registry.inc('c')\n"
            "assert registry.snapshot()['counters'] == {}\n"
            "tracer = get_tracer()\n"
            "assert not tracer.enabled\n"
            "assert tracer.start_span('op', root=True) is NOOP_SPAN\n"
            "assert tracer.spans == []\n"
            "print('disabled-ok')\n"
        )
        env = dict(os.environ, REPRO_OBS="0")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "disabled-ok" in result.stdout

    def test_repro_obs_env_default_on(self):
        code = (
            "from repro.obs import get_registry\n"
            "assert get_registry().enabled\n"
            "print('enabled-ok')\n"
        )
        env = dict(os.environ)
        env.pop("REPRO_OBS", None)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "enabled-ok" in result.stdout


class TestTiming:
    def test_timer_records_histogram(self):
        reg = MetricsRegistry()
        with Timer("op_s", registry=reg) as t:
            pass
        assert t.elapsed_s is not None and t.elapsed_s >= 0.0
        assert reg.histogram("op_s").count == 1

    def test_timer_span(self):
        reg = MetricsRegistry()
        with Timer("op_s", registry=reg, span=True, attrs={"k": "v"}):
            pass
        (span,) = reg.spans
        assert span.name == "op_s"
        assert span.attrs == {"k": "v"}
        assert span.to_dict()["attrs"] == {"k": "v"}

    def test_timer_disabled_registry(self):
        reg = MetricsRegistry(enabled=False)
        with Timer("op_s", registry=reg) as t:
            pass
        assert t.elapsed_s is None
        assert reg.snapshot()["histograms"] == {}

    def test_timed_decorator(self):
        reg = MetricsRegistry()

        @timed("fn_s", registry=reg)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert add.__name__ == "add"
        assert reg.histogram("fn_s").count == 1

    def test_timer_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with Timer("op_s", registry=reg):
                raise RuntimeError("boom")
        assert reg.histogram("op_s").count == 1


class TestInstrumentationHooks:
    """The built-in hooks feed the global registry (checked as deltas so
    test order doesn't matter)."""

    def _counter(self, name):
        return get_registry().counter(name).value

    def _hist_count(self, name):
        return get_registry().histogram(name).count

    def test_feature_extraction_reports_stage_timings(self):
        from repro.dsp.features import extract_feature_matrix

        before = {
            name: self._hist_count(f"dsp.features.{name}")
            for name in ("extract_s", "mfcc_s", "zcr_s", "rmse_s",
                         "pitch_s", "magnitude_s")
        }
        calls_before = self._counter("dsp.features.calls")
        extract_feature_matrix(np.sin(np.linspace(0, 100, 4096)))
        for name, count in before.items():
            assert self._hist_count(f"dsp.features.{name}") == count + 1
        assert self._counter("dsp.features.calls") == calls_before + 1

    def test_stream_counts_commits_and_flickers(self):
        from repro.affect.stream import EmotionStream

        pushes = self._counter("affect.stream.pushes")
        commits = self._counter("affect.stream.commits")
        flickers = self._counter("affect.stream.flickers")
        stream = EmotionStream(window=3)
        for t, label in enumerate(["a", "a", "b", "a", "a"]):
            stream.push(label, t)
        assert self._counter("affect.stream.pushes") == pushes + 5
        assert self._counter("affect.stream.commits") == commits + 1
        assert self._counter("affect.stream.flickers") == flickers + 1

    def test_controller_counts_mode_changes(self):
        from repro.core.controller import AffectDrivenSystemManager

        changes = self._counter("core.controller.mode_changes")
        manager = AffectDrivenSystemManager()
        for t, label in enumerate(["distracted"] * 3 + ["relaxed"] * 5):
            manager.observe(label, float(t))
        assert self._counter("core.controller.mode_changes") > changes

    def test_decoder_publishes_activity(self, tiny_stream):
        from repro.video.decoder import Decoder

        decodes = self._counter("video.decoder.decodes")
        frames = self._counter("video.decoder.frames_decoded")
        latencies = self._hist_count("video.decoder.decode_s")
        decoded = Decoder().decode(tiny_stream)
        assert self._counter("video.decoder.decodes") == decodes + 1
        assert (
            self._counter("video.decoder.frames_decoded")
            == frames + decoded.counters.frames_decoded
        )
        assert self._hist_count("video.decoder.decode_s") == latencies + 1

    def test_emulator_publishes_run_metrics(self, catalog_44):
        from repro.android.emulator import AndroidEmulator
        from repro.android.monkey import LaunchEvent

        cold = self._counter("android.emulator.cold_starts")
        runs = self._hist_count("android.emulator.run_s")
        emulator = AndroidEmulator(catalog=catalog_44)
        a, b = catalog_44[0].name, catalog_44[1].name
        emulator.run([
            LaunchEvent(0.0, a, "calm"),
            LaunchEvent(5.0, b, "calm"),
            LaunchEvent(9.0, b, "calm"),
        ])
        assert self._counter("android.emulator.cold_starts") == cold + 2
        assert self._counter("android.emulator.foreground_touches") >= 1
        assert self._hist_count("android.emulator.run_s") == runs + 1

    def test_model_fit_and_predict_metrics(self):
        from repro.nn.layers import Dense
        from repro.nn.model import Sequential

        epochs = self._counter("nn.fit.epochs")
        samples = self._counter("nn.predict.samples")
        model = Sequential([Dense(8, activation="relu"), Dense(3)])
        model.compile(input_shape=(5,))
        rng = np.random.default_rng(0)
        x = rng.standard_normal((20, 5))
        y = rng.integers(0, 3, 20)
        model.fit(x, y, epochs=2, batch_size=10)
        model.predict(x)
        assert self._counter("nn.fit.epochs") == epochs + 2
        assert self._counter("nn.predict.samples") >= samples + 20


class TestCannedWorkload:
    @pytest.mark.slow
    def test_workload_covers_all_layers(self):
        from repro.obs.workload import run_canned_workload

        reg = get_registry()
        reg.reset()
        summary = run_canned_workload(seed=0)
        snap = reg.snapshot()
        counters = snap["counters"]
        histograms = snap["histograms"]
        # The acceptance surface: feature-extraction, inference, stream,
        # decoder, and emulator metrics must all be present.
        assert counters["dsp.features.calls"] > 0
        assert counters["nn.predict.samples"] > 0
        assert counters["affect.stream.pushes"] > 0
        assert counters["video.decoder.frames_decoded"] > 0
        assert counters["android.emulator.cold_starts"] > 0
        assert histograms["affect.pipeline.classify_s"]["count"] >= 1
        assert histograms["video.decoder.decode_s"]["count"] >= 1
        assert summary["metrics_enabled"] is True
        assert summary["classifier"]["label"]


class TestStatsCli:
    @pytest.mark.slow
    def test_stats_json_report(self, capsys):
        from repro.cli import main

        assert main(["stats", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "workload" in report and "metrics" in report
        for family in ("dsp.features", "nn.", "affect.", "video.decoder",
                       "android.emulator"):
            assert any(
                k.startswith(family) for k in report["metrics"]["counters"]
            ), family
