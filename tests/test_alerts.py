"""Multi-window burn-rate alerting: rules, state machine, sinks, export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.alerts import (
    DEFAULT_ALERT_RULES,
    AlertManager,
    AlertRule,
    CallbackSink,
    JsonlSink,
    StderrSink,
    bench_alert_rules,
    render_alert_timeline,
)
from repro.obs.export import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLObjective


def shed_objective(threshold=0.1):
    return SLObjective(name="shed", kind="ratio", metric="bad",
                       denominator="total", threshold=threshold)


def shed_rule(**overrides):
    kwargs = dict(
        name="shed-page",
        objective=shed_objective(),
        severity="page",
        fast_window_s=1.0,
        slow_window_s=3.0,
        burn_threshold=2.0,
        for_s=0.0,
        resolve_after_s=1.0,
    )
    kwargs.update(overrides)
    return AlertRule(**kwargs)


class TestAlertRuleValidation:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            shed_rule(severity="carrier-pigeon")

    def test_slow_window_must_exceed_fast(self):
        with pytest.raises(ValueError, match="slow_window_s"):
            shed_rule(fast_window_s=3.0, slow_window_s=3.0)

    def test_fast_window_must_be_positive(self):
        with pytest.raises(ValueError, match="fast_window_s"):
            shed_rule(fast_window_s=0.0)

    def test_burn_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            shed_rule(burn_threshold=0.0)

    def test_dwell_times_must_be_non_negative(self):
        with pytest.raises(ValueError, match="dwell"):
            shed_rule(for_s=-1.0)
        with pytest.raises(ValueError, match="dwell"):
            shed_rule(resolve_after_s=-0.1)

    def test_to_dict_is_json_serializable(self):
        doc = json.loads(json.dumps(shed_rule().to_dict()))
        assert doc["name"] == "shed-page"
        assert doc["objective"] == "shed"
        assert doc["fast_window_s"] == 1.0

    def test_manager_rejects_duplicate_rule_names(self):
        with pytest.raises(ValueError, match="unique"):
            AlertManager((shed_rule(), shed_rule()))

    def test_manager_rejects_empty_rule_set(self):
        with pytest.raises(ValueError, match="at least one"):
            AlertManager(())


class TestDefaultGeometry:
    def test_default_rules_follow_the_sre_pairs(self):
        by_name = {rule.name: rule for rule in DEFAULT_ALERT_RULES}
        page = by_name["shed-page"]
        assert (page.fast_window_s, page.slow_window_s) == (300.0, 3600.0)
        assert page.burn_threshold == pytest.approx(14.4)
        ticket = by_name["shed-ticket"]
        assert (ticket.fast_window_s, ticket.slow_window_s) == (1800.0, 21600.0)
        assert ticket.burn_threshold == pytest.approx(6.0)

    def test_bench_rules_compress_the_same_geometry(self):
        rules = {r.name: r for r in bench_alert_rules(
            fast_s=1.0, slow_s=3.0, page_burn=8.0, ticket_burn=4.0,
            resolve_after_s=0.5,
        )}
        assert set(rules) == {"latency-page", "latency-ticket",
                              "shed-page", "shed-ticket"}
        assert rules["shed-page"].fast_window_s == 1.0
        assert rules["shed-page"].burn_threshold == 8.0
        # The ticket tier doubles every page timescale.
        assert rules["shed-ticket"].fast_window_s == 2.0
        assert rules["shed-ticket"].slow_window_s == 6.0
        assert rules["shed-ticket"].resolve_after_s == 1.0


class _Driver:
    """Feed a manager synthetic traffic one kept sample at a time."""

    def __init__(self, manager: AlertManager) -> None:
        self.manager = manager
        self.registry = MetricsRegistry()
        self.events = []

    def tick(self, now: float, total: int = 0, bad: int = 0):
        if total:
            self.registry.inc("total", total)
        if bad:
            self.registry.inc("bad", bad)
        events = self.manager.observe(self.registry, now)
        self.events.extend(events)
        return events


class TestStateMachine:
    def test_pending_then_firing_then_resolved(self):
        manager = AlertManager((shed_rule(),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)                 # baseline snapshot
        assert manager.state("shed-page") == "inactive"
        events = drv.tick(1.0, total=100, bad=50)  # 50% bad, burn 5x
        assert [e.state for e in events] == ["pending", "firing"]
        assert manager.firing() == ["shed-page"]
        drv.tick(2.0, total=100)                 # calm begins
        assert manager.state("shed-page") == "firing"  # dwell not met
        events = drv.tick(3.0, total=100)        # calm held 1.0s
        assert [e.state for e in events] == ["resolved"]
        assert manager.state("shed-page") == "inactive"

    def test_for_s_dwell_gates_firing(self):
        manager = AlertManager((shed_rule(for_s=0.6),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        events = drv.tick(1.0, total=100, bad=50)
        assert [e.state for e in events] == ["pending"]
        assert manager.state("shed-page") == "pending"
        drv.tick(1.5, total=50, bad=25)          # still violating, 0.5s < for_s
        assert manager.state("shed-page") == "pending"
        drv.tick(1.75, total=50, bad=25)         # 0.75s >= for_s
        assert manager.state("shed-page") == "firing"

    def test_pending_subsides_without_firing(self):
        manager = AlertManager((shed_rule(for_s=1.0),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=50)
        assert manager.state("shed-page") == "pending"
        drv.tick(1.5, total=2000)                # burn subsides before for_s
        assert manager.state("shed-page") == "inactive"
        assert manager.stats()["fires"]["shed-page"] == 0

    def test_firing_is_deduplicated_within_an_episode(self):
        manager = AlertManager((shed_rule(),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        for t in (1.5, 2.0, 2.5):                # keeps violating
            drv.tick(t, total=50, bad=30)
        firing = [e for e in drv.events if e.state == "firing"]
        assert len(firing) == 1
        assert manager.stats()["fires"]["shed-page"] == 1

    def test_refire_within_flap_window_counts_a_flap(self):
        manager = AlertManager((shed_rule(resolve_after_s=0.25),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)         # fire #1
        # Light calm traffic: the fast window goes quiet (resolving the
        # page) while the slow window still remembers the bad stretch.
        drv.tick(2.0, total=10)
        drv.tick(2.5, total=10)                  # resolves
        assert manager.state("shed-page") == "inactive"
        drv.tick(3.0, total=100, bad=60)         # re-fires 0.5s later
        stats = manager.stats()
        assert stats["fires"]["shed-page"] == 2
        assert stats["flaps"]["shed-page"] == 1

    def test_slow_window_vetoes_a_short_spike(self):
        """Fast-only violation must not page: the burn is not sustained."""
        manager = AlertManager((shed_rule(burn_threshold=3.0,
                                          slow_window_s=4.0),))
        drv = _Driver(manager)
        # Long healthy history fills the slow window.
        for t in (0.0, 1.0, 2.0, 3.0):
            drv.tick(t, total=1000)
        # One bad fast window: fast burn 5x, slow burn diluted to ~1.2x.
        events = drv.tick(4.0, total=100, bad=50)
        assert events == []
        assert manager.state("shed-page") == "inactive"


class TestNoEvidence:
    def test_empty_history_never_fires(self):
        manager = AlertManager((shed_rule(),))
        registry = MetricsRegistry()
        assert manager.observe(registry, 0.0) == []
        assert manager.observe(registry, 0.1) == []  # rate-limited tick
        assert manager.state("shed-page") == "inactive"

    def test_registry_reset_yields_no_evidence_not_a_page(self):
        """A reset mid-window makes deltas negative — silence, not alarm."""
        manager = AlertManager((shed_rule(),))
        registry = MetricsRegistry()
        registry.inc("total", 1000)
        registry.inc("bad", 500)                  # lifetime looks terrible
        manager.observe(registry, 0.0)
        registry.reset()                          # ops wiped the registry
        registry.inc("total", 10)                 # fresh healthy traffic
        events = manager.observe(registry, 1.0)
        assert events == []
        assert manager.state("shed-page") == "inactive"

    def test_reset_lets_a_firing_alert_resolve(self):
        manager = AlertManager((shed_rule(resolve_after_s=0.5),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        assert manager.state("shed-page") == "firing"
        drv.registry.reset()                      # evidence gone
        drv.tick(2.0)
        drv.tick(3.0)                             # calm dwell elapsed
        assert manager.state("shed-page") == "inactive"
        assert [e.state for e in drv.events][-1] == "resolved"

    def test_concurrent_reset_never_crashes_or_wedges(self):
        """Registry resets racing observe() must stay silent failures."""
        manager = AlertManager((shed_rule(),))
        registry = MetricsRegistry()
        stop = threading.Event()

        def resetter():
            while not stop.is_set():
                registry.reset()

        thread = threading.Thread(target=resetter)
        thread.start()
        try:
            now = 0.0
            for _ in range(200):
                registry.inc("total", 100)
                registry.inc("bad", 60)
                manager.observe(registry, now)
                now += 0.25
        finally:
            stop.set()
            thread.join()
        assert manager.state("shed-page") in (
            "inactive", "pending", "firing")
        for event in manager.timeline():
            assert event.state in ("pending", "firing", "resolved",
                                   "inactive")


class TestSinksAndExport:
    def test_callback_sink_sees_every_transition(self):
        seen = []
        manager = AlertManager((shed_rule(),),
                               sinks=(CallbackSink(seen.append),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        assert [e.state for e in seen] == ["pending", "firing"]
        assert seen[0].rule == "shed-page"

    def test_sink_errors_are_swallowed_and_counted(self):
        def explode(_event):
            raise RuntimeError("sink down")

        manager = AlertManager((shed_rule(),),
                               sinks=(CallbackSink(explode),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        events = drv.tick(1.0, total=100, bad=60)
        assert [e.state for e in events] == ["pending", "firing"]
        assert drv.registry.counter("obs.alerts.sink_errors").value == 2

    def test_jsonl_sink_appends_one_object_per_line(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        manager = AlertManager((shed_rule(),),
                               sinks=(JsonlSink(str(path)),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        lines = path.read_text().strip().split("\n")
        assert [json.loads(line)["state"] for line in lines] == [
            "pending", "firing"]

    def test_stderr_sink_renders_one_line(self, capsys):
        import sys

        manager = AlertManager((shed_rule(),),
                               sinks=(StderrSink(sys.stderr),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        err = capsys.readouterr().err
        assert "ALERT" in err and "shed-page" in err and "FIRING" in err

    def test_fired_and_resolved_counters(self):
        manager = AlertManager((shed_rule(),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        drv.tick(2.0, total=1000)
        drv.tick(3.0, total=1000)
        counters = drv.registry.snapshot()["counters"]
        assert counters['obs.alerts.fired{severity="page"}'] == 1
        assert counters['obs.alerts.resolved{severity="page"}'] == 1

    def test_alert_state_gauge_tracks_the_state_machine(self):
        manager = AlertManager((shed_rule(),))
        drv = _Driver(manager)
        gauge = 'alert_state{rule="shed-page",severity="page"}'
        drv.tick(0.0, total=100)
        assert drv.registry.gauge(gauge).value == 0.0
        drv.tick(1.0, total=100, bad=60)
        assert drv.registry.gauge(gauge).value == 2.0
        drv.tick(2.0, total=1000)
        drv.tick(3.0, total=1000)
        assert drv.registry.gauge(gauge).value == 0.0

    def test_export_state_reaches_prometheus_exposition(self):
        registry = MetricsRegistry()
        AlertManager((shed_rule(),)).export_state(registry)
        text = prometheus_text(registry)
        assert ('repro_alert_state{rule="shed-page",severity="page"} 0'
                in text)

    def test_render_alert_timeline(self):
        manager = AlertManager((shed_rule(),))
        drv = _Driver(manager)
        drv.tick(0.0, total=100)
        drv.tick(1.0, total=100, bad=60)
        text = render_alert_timeline(manager.timeline())
        assert text.startswith("== alerts ==")
        assert "shed-page" in text and "FIRING" in text
        assert render_alert_timeline([]) == "(no alert transitions)"


class TestSharedHistory:
    def test_rules_share_one_snapshot_deque(self):
        rules = (shed_rule(),
                 shed_rule(name="shed-ticket", severity="ticket",
                           fast_window_s=2.0, slow_window_s=6.0))
        manager = AlertManager(rules)
        registry = MetricsRegistry()
        registry.inc("total", 100)
        manager.observe(registry, 0.0)
        # One kept sample regardless of rule count.
        assert manager.stats()["history_samples"] == 1
        assert manager.history.max_horizon_s == 6.0

    def test_min_interval_defaults_to_quarter_fast_window(self):
        manager = AlertManager((shed_rule(fast_window_s=1.0),))
        assert manager.history.min_interval_s == pytest.approx(0.25)

    def test_verdict_cache_tracks_history_versions(self):
        rule = shed_rule()
        manager = AlertManager((rule,))
        registry = MetricsRegistry()
        registry.inc("total", 100)
        manager.observe(registry, 0.0)
        registry.inc("total", 100)
        registry.inc("bad", 50)
        manager.observe(registry, 1.0)
        fast, slow = manager.verdicts(rule)
        # Cached verdicts equal a fresh evaluation of the same history.
        assert fast.burn_rate == manager.history.evaluate(
            rule.objective, rule.fast_window_s).burn_rate
        assert fast.burn_rate == pytest.approx(5.0)
        # New evidence invalidates the cache.
        registry.inc("total", 1000)
        manager.observe(registry, 2.0)
        fast2, _ = manager.verdicts(rule)
        assert fast2.burn_rate < fast.burn_rate
