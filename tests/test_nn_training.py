"""Tests for losses, optimizers, metrics, and the Sequential model."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Flatten
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.metrics import accuracy, confusion_matrix, macro_f1
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).standard_normal((5, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(0.5, abs=1e-6)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_loss_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((3, 4))
        assert loss.forward(logits, np.array([0, 1, 2])) == pytest.approx(
            np.log(4), rel=1e-6
        )

    def test_gradient_matches_numeric(self):
        loss = SoftmaxCrossEntropy()
        logits = np.random.default_rng(1).standard_normal((4, 3))
        labels = np.array([0, 2, 1, 2])
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += eps
                hi = loss.forward(logits, labels)
                logits[i, j] -= 2 * eps
                lo = loss.forward(logits, labels)
                logits[i, j] += eps
                numeric[i, j] = (hi - lo) / (2 * eps)
        loss.forward(logits, labels)
        np.testing.assert_allclose(loss.backward(), numeric, rtol=1e-4, atol=1e-7)


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=200):
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(steps):
            grads = {"w": 2.0 * params["w"]}
            optimizer.update(params, grads)
        return params["w"]

    def test_sgd_converges(self):
        w = self._quadratic_descent(SGD(lr=0.1))
        assert np.all(np.abs(w) < 1e-6)

    def test_sgd_momentum_converges(self):
        w = self._quadratic_descent(SGD(lr=0.05, momentum=0.9))
        assert np.all(np.abs(w) < 1e-4)

    def test_adam_converges(self):
        w = self._quadratic_descent(Adam(lr=0.3), steps=400)
        assert np.all(np.abs(w) < 1e-3)

    def test_adam_clipnorm(self):
        opt = Adam(lr=0.1, clipnorm=1.0)
        params = {"w": np.zeros(3)}
        opt.update(params, {"w": np.array([100.0, 0.0, 0.0])})
        # First Adam step magnitude is bounded by lr regardless, but the
        # clip must have rescaled the raw gradient before moments.
        assert np.isfinite(params["w"]).all()
        assert abs(opt._m["w"][0]) <= 0.11

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adam(lr=-1.0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 2)
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_confusion_matrix_rows_sum_to_class_counts(self):
        y = np.array([0, 1, 2, 2, 1, 0, 0])
        pred = np.array([0, 2, 2, 1, 1, 0, 1])
        cm = confusion_matrix(y, pred, 3)
        assert cm.sum() == y.size
        assert cm.sum(axis=1).tolist() == [3, 2, 2]

    def test_macro_f1_perfect(self):
        y = np.array([0, 1, 2])
        assert macro_f1(y, y, 3) == pytest.approx(1.0)

    def test_macro_f1_handles_absent_class(self):
        score = macro_f1(np.array([0, 0]), np.array([0, 0]), n_classes=2)
        assert 0.0 <= score <= 1.0


class TestSequential:
    def _xor_data(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        x = np.tile(x, (25, 1)) + 0.02 * np.random.default_rng(0).standard_normal((100, 2))
        y = np.tile([0, 1, 1, 0], 25)
        return x, y

    def test_learns_xor(self):
        x, y = self._xor_data()
        model = Sequential([Dense(16, activation="tanh"), Dense(2)])
        model.compile((2,), Adam(0.02))
        model.fit(x, y, epochs=60, batch_size=16)
        assert model.evaluate(x, y) > 0.95

    def test_requires_compile(self):
        model = Sequential([Dense(2)])
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 2)))

    def test_add_after_compile_fails(self):
        model = Sequential([Dense(2)])
        model.compile((3,))
        with pytest.raises(RuntimeError):
            model.add(Dense(2))

    def test_predict_proba_rows_sum_to_one(self):
        model = Sequential([Dense(3)])
        model.compile((4,))
        probs = model.predict_proba(np.random.default_rng(1).standard_normal((7, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_fit_shape_mismatch(self):
        model = Sequential([Dense(2)])
        model.compile((3,))
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 3)), np.zeros(5, dtype=int), epochs=1)

    def test_history_keys_and_length(self):
        x, y = self._xor_data()
        model = Sequential([Dense(4, activation="relu"), Dense(2)])
        model.compile((2,))
        history = model.fit(x, y, epochs=3)
        assert len(history["loss"]) == 3
        assert len(history["accuracy"]) == 3

    def test_save_load_roundtrip(self, tmp_path):
        x, y = self._xor_data()
        model = Sequential([Dense(8, activation="tanh"), Dense(2)], seed=3)
        model.compile((2,), Adam(0.02))
        model.fit(x, y, epochs=20)
        path = tmp_path / "weights.npz"
        model.save(path)
        fresh = Sequential([Dense(8, activation="tanh"), Dense(2)], seed=99)
        fresh.compile((2,))
        fresh.load(path)
        assert np.array_equal(fresh.predict(x), model.predict(x))

    def test_set_weights_rejects_bad_keys(self):
        model = Sequential([Dense(2)])
        model.compile((3,))
        with pytest.raises(ValueError):
            model.set_weights({"bogus": np.zeros(1)})

    def test_n_params(self):
        model = Sequential([Flatten(), Dense(5), Dense(2)])
        model.compile((3, 4))
        assert model.n_params == (12 * 5 + 5) + (5 * 2 + 2)
