"""Tests for repro.dsp.features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.features import (
    FeatureConfig,
    extract_feature_matrix,
    pitch_track,
    rms_energy,
    sanitize_signal,
    spectral_magnitude_stats,
    zero_crossing_rate,
)
from repro.errors import SensorError

SR = 16000.0


def _tone(freq, n=8000, sr=SR):
    return np.sin(2 * np.pi * freq * np.arange(n) / sr)


class TestZeroCrossingRate:
    def test_constant_signal_zero(self):
        assert np.all(zero_crossing_rate(np.ones(2048), 512, 256) == 0)

    def test_alternating_signal_max(self):
        sig = np.tile([1.0, -1.0], 1024)
        zcr = zero_crossing_rate(sig, 512, 256)
        assert np.all(zcr > 0.95)

    def test_scales_with_frequency(self):
        low = zero_crossing_rate(_tone(100), 512, 256).mean()
        high = zero_crossing_rate(_tone(2000), 512, 256).mean()
        assert high > low

    def test_empty(self):
        assert zero_crossing_rate(np.array([]), 512, 256).shape == (0,)

    def test_single_sample_frames(self):
        # Regression: frame_length == 1 used to divide by
        # frames.shape[1] - 1 == 0, producing NaN/inf rates.
        sig = np.tile([1.0, -1.0], 8)
        zcr = zero_crossing_rate(sig, frame_length=1, hop_length=1)
        assert zcr.shape == (sig.shape[0],)
        assert np.all(np.isfinite(zcr))
        # One-sample frames contain no transitions at all.
        assert np.all(zcr == 0.0)

    def test_empty_signal_single_sample_frames(self):
        assert zero_crossing_rate(np.array([]), 1, 1).shape == (0,)


class TestRmsEnergy:
    def test_amplitude_scaling(self):
        quiet = rms_energy(0.1 * _tone(440), 512, 256).mean()
        loud = rms_energy(1.0 * _tone(440), 512, 256).mean()
        assert loud == pytest.approx(10 * quiet, rel=0.05)

    def test_sine_rms(self):
        rms = rms_energy(_tone(440, n=5120), 512, 512)[:8]
        assert rms.mean() == pytest.approx(1 / np.sqrt(2), rel=0.05)


class TestPitchTrack:
    @pytest.mark.parametrize("freq", [100.0, 150.0, 220.0, 330.0])
    def test_recovers_tone_frequency(self, freq):
        pitch = pitch_track(_tone(freq), SR, 1024, 512)
        voiced = pitch[pitch > 0]
        assert voiced.size > 0
        assert np.median(voiced) == pytest.approx(freq, rel=0.06)

    def test_noise_is_mostly_unvoiced_or_bounded(self):
        noise = np.random.default_rng(0).standard_normal(8000) * 0.01
        pitch = pitch_track(noise, SR, 1024, 512, fmin=60, fmax=420)
        assert np.all((pitch == 0) | ((pitch >= 59) & (pitch <= 430)))

    def test_silence_unvoiced(self):
        assert np.all(pitch_track(np.zeros(4096), SR, 1024, 512) == 0)


class TestSpectralStats:
    def test_shape(self):
        stats = spectral_magnitude_stats(_tone(440), 512, 256)
        assert stats.shape[1] == 2
        assert np.all(stats[:, 0] >= 0)


class TestFeatureMatrix:
    def test_shape_matches_config(self):
        config = FeatureConfig()
        feats = extract_feature_matrix(_tone(200, n=16000), config)
        assert feats.shape[1] == config.n_features
        assert np.isfinite(feats).all()

    def test_n_features_accounting(self):
        config = FeatureConfig(n_mfcc=13)
        assert config.n_features == 13 + 5

    @given(freq=st.floats(80.0, 400.0), amp=st.floats(0.05, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_property_always_finite(self, freq, amp):
        sig = amp * _tone(freq, n=6000)
        feats = extract_feature_matrix(sig)
        assert np.isfinite(feats).all()
        assert feats.shape[0] > 0


class TestNonFiniteGuard:
    """Regression: NaN/Inf used to propagate silently through extraction."""

    def _nan_wave(self):
        sig = _tone(200, n=8000)
        sig[1000:1200] = np.nan
        sig[4000] = np.inf
        return sig

    def test_nan_wave_sanitized_to_finite_features(self):
        feats = extract_feature_matrix(self._nan_wave())
        assert np.isfinite(feats).all()

    def test_raise_policy_raises_sensor_error(self):
        with pytest.raises(SensorError):
            extract_feature_matrix(self._nan_wave(), nonfinite="raise")
        # SensorError stays catchable as the historical ValueError too.
        with pytest.raises(ValueError):
            extract_feature_matrix(self._nan_wave(), nonfinite="raise")

    def test_sanitize_replaces_with_silence(self):
        sig = self._nan_wave()
        clean = sanitize_signal(sig)
        bad = ~np.isfinite(sig)
        assert np.all(clean[bad] == 0.0)
        assert np.array_equal(clean[~bad], sig[~bad])

    def test_finite_signal_passes_through(self):
        sig = _tone(100, n=2000)
        assert np.array_equal(sanitize_signal(sig), sig)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            sanitize_signal(np.zeros(4), nonfinite="explode")

    def test_counted_in_registry(self):
        from repro.obs import get_registry

        registry = get_registry()
        before = registry.counter("dsp.features.nonfinite_samples").value
        sanitize_signal(self._nan_wave())
        after = registry.counter("dsp.features.nonfinite_samples").value
        assert after - before == 201
