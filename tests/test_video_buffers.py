"""Tests for the circular / pre-store buffers and the Input Selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.buffers import (
    CircularBuffer,
    InputSelector,
    PreStoreBuffer,
    RingBuffer,
    SelectorConfig,
    pump_through_buffers,
)
from repro.video.nal import NalType, NalUnit


class TestRingBuffer:
    def test_write_read_fifo_order(self):
        buf = RingBuffer(8)
        buf.write(b"abc")
        buf.write(b"de")
        assert buf.read(5) == b"abcde"

    def test_wraparound(self):
        buf = RingBuffer(4)
        buf.write(b"abcd")
        assert buf.read(2) == b"ab"
        buf.write(b"ef")
        assert buf.read(4) == b"cdef"

    def test_overflow_rejected_not_overwritten(self):
        buf = RingBuffer(4)
        assert buf.write(b"abcd") == 4
        assert buf.write(b"x") == 0
        assert buf.rejected_writes == 1
        assert buf.read(4) == b"abcd"

    def test_partial_write(self):
        buf = RingBuffer(4)
        assert buf.write(b"abcdef") == 4
        assert buf.read(6) == b"abcd"

    def test_read_never_exceeds_fill(self):
        buf = RingBuffer(8)
        buf.write(b"ab")
        assert buf.read(10) == b"ab"
        assert buf.read(1) == b""

    def test_counters(self):
        buf = RingBuffer(8)
        buf.write(b"abc")
        buf.read(2)
        assert buf.total_written == 3
        assert buf.total_read == 2
        assert buf.fill == 1
        assert buf.free == 7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_negative_read(self):
        with pytest.raises(ValueError):
            RingBuffer(4).read(-1)

    @given(st.lists(st.tuples(st.binary(max_size=6), st.integers(0, 6)), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_property_fifo_and_no_loss(self, ops):
        """Everything written is read back exactly once, in order."""
        buf = RingBuffer(16)
        written = bytearray()
        read = bytearray()
        for data, n in ops:
            accepted = buf.write(data)
            written.extend(data[:accepted])
            read.extend(buf.read(n))
            assert 0 <= buf.fill <= buf.capacity
        read.extend(buf.read(buf.fill))
        assert bytes(read) == bytes(written)


class TestPaperCapacities:
    def test_circular_buffer_is_128_bits(self):
        assert CircularBuffer().capacity == 16

    def test_prestore_is_128x16_bits(self):
        assert PreStoreBuffer().capacity == 256


class TestInputSelector:
    def _slice(self, nal_type, size, index=0):
        payload = bytes(size - 5)  # size_bytes = 3 + 2 + len(payload)
        return NalUnit(nal_type, index, payload)

    def test_disabled_keeps_everything(self):
        selector = InputSelector(SelectorConfig(enabled=False))
        units = [self._slice(NalType.SLICE_B, 50)]
        assert selector.filter_units(units) == units
        assert selector.stats.deleted_units == 0

    def test_deletes_small_b_slices(self):
        selector = InputSelector(SelectorConfig(enabled=True, s_th=140, f=1))
        units = [
            self._slice(NalType.SLICE_I, 100),
            self._slice(NalType.SLICE_B, 100, 1),
            self._slice(NalType.SLICE_B, 200, 2),
        ]
        kept = selector.filter_units(units)
        assert [u.nal_type for u in kept] == [NalType.SLICE_I, NalType.SLICE_B]
        assert kept[1].size_bytes == 200
        assert selector.stats.deleted_units == 1
        assert selector.stats.deleted_bytes == 100

    def test_never_deletes_i_or_sps(self):
        selector = InputSelector(SelectorConfig(enabled=True, s_th=10_000, f=1))
        units = [
            self._slice(NalType.SPS, 10),
            self._slice(NalType.SLICE_I, 10),
        ]
        assert selector.filter_units(units) == units

    def test_f_deletes_every_fth_eligible(self):
        selector = InputSelector(SelectorConfig(enabled=True, s_th=140, f=3))
        units = [self._slice(NalType.SLICE_B, 100, i) for i in range(9)]
        kept = selector.filter_units(units)
        # m = 9 eligible, m // f = 3 deleted.
        assert len(kept) == 6
        assert selector.stats.deleted_units == 3

    def test_threshold_is_inclusive(self):
        selector = InputSelector(SelectorConfig(enabled=True, s_th=140, f=1))
        kept = selector.filter_units([self._slice(NalType.SLICE_P, 140)])
        assert kept == []

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SelectorConfig(s_th=-1)
        with pytest.raises(ValueError):
            SelectorConfig(f=0)

    def test_bytes_scanned_counts_everything(self):
        selector = InputSelector(SelectorConfig(enabled=True))
        units = [self._slice(NalType.SLICE_I, 123), self._slice(NalType.SLICE_B, 77, 1)]
        selector.filter_units(units)
        assert selector.stats.bytes_scanned == 200


class TestBufferPump:
    @given(st.binary(max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_property_delivers_exactly_input(self, data):
        delivered, stats = pump_through_buffers(
            data, PreStoreBuffer(), CircularBuffer()
        )
        assert delivered == data
        assert stats.bytes_delivered == len(data)

    def test_word_accounting(self):
        data = bytes(100)
        _, stats = pump_through_buffers(data, PreStoreBuffer(), CircularBuffer())
        assert stats.words_to_circular == 50

    def test_handshake_with_tiny_buffers(self):
        data = bytes(range(256))
        delivered, _ = pump_through_buffers(data, PreStoreBuffer(4), CircularBuffer(2))
        assert delivered == data

    def test_empty_payload(self):
        delivered, stats = pump_through_buffers(b"", PreStoreBuffer(), CircularBuffer())
        assert delivered == b""
        assert stats.words_to_circular == 0
