"""Tail-based trace retention: reasons, provisional roots, ring bounds."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.export import chrome_trace_json
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NOOP_SPAN, RetentionPolicy, Tracer


@pytest.fixture()
def tracer():
    return Tracer(registry=MetricsRegistry(), seed=7,
                  retention=RetentionPolicy())


def finish_root(tracer, status=None, **attrs):
    span = tracer.start_span("serve.window", root=True,
                             attrs=dict(attrs) or None)
    if status == "error":
        span.end(error=RuntimeError("boom"))
    else:
        span.end()
    return span


class TestRetentionReasons:
    """Reason precedence: error > shed > degraded > slo-latency > slow."""

    def policy(self, **kwargs):
        return RetentionPolicy(**kwargs)

    def span_with(self, tracer, status=None, **attrs):
        return finish_root(tracer, status=status, **attrs)

    def test_error_wins_over_everything(self, tracer):
        span = self.span_with(tracer, status="error", shed=True,
                              degraded=True, latency_s=9.0)
        assert self.policy().reason(span) == "error"

    def test_shed_wins_over_degraded(self, tracer):
        span = self.span_with(tracer, shed=True, degraded=True)
        assert self.policy().reason(span) == "shed"

    def test_degraded_wins_over_latency(self, tracer):
        span = self.span_with(tracer, degraded=True, latency_s=9.0)
        assert self.policy().reason(span) == "degraded"

    def test_slo_latency_needs_a_numeric_excess(self, tracer):
        assert self.policy().reason(
            self.span_with(tracer, latency_s=0.51)) == "slo-latency"
        assert self.policy().reason(
            self.span_with(tracer, latency_s=0.5)) is None
        assert self.policy().reason(
            self.span_with(tracer, latency_s="slow")) is None

    def test_healthy_root_is_dropped(self, tracer):
        assert self.policy().reason(self.span_with(tracer)) is None

    def test_slow_span_threshold_is_wall_clock(self, tracer):
        span = tracer.start_span("op", root=True, start_perf_s=0.0)
        span.end(end_perf_s=1.0)
        assert self.policy().reason(span) is None          # off by default
        assert self.policy(slow_span_s=0.5).reason(span) == "slow"

    def test_knobs_disable_their_checks(self, tracer):
        policy = self.policy(keep_errors=False, keep_degraded=False,
                             slow_latency_s=None)
        assert policy.reason(
            self.span_with(tracer, status="error", shed=True,
                           latency_s=9.0)) is None


class TestProvisionalRoots:
    """Head-sampled-out roots exist provisionally, children stay no-ops."""

    def make(self, retention=None, **kwargs):
        return Tracer(registry=MetricsRegistry(), seed=7,
                      sample_rate=0.0, retention=retention, **kwargs)

    def test_without_retention_misses_are_pure_noops(self):
        tracer = self.make(retention=None)
        assert tracer.start_span("op", root=True) is NOOP_SPAN

    def test_with_retention_misses_mint_provisional_roots(self):
        tracer = self.make(retention=RetentionPolicy())
        span = tracer.start_span("op", root=True)
        assert span is not NOOP_SPAN
        assert span.head_sampled is False
        assert tracer.registry.counter("obs.trace.sampled_out").value == 1

    def test_children_of_provisional_roots_are_noops(self):
        tracer = self.make(retention=RetentionPolicy())
        root = tracer.start_span("op", root=True)
        assert tracer.start_span("child", parent=root) is NOOP_SPAN

    def test_healthy_provisional_root_vanishes(self):
        tracer = self.make(retention=RetentionPolicy())
        tracer.start_span("op", root=True).end()
        assert tracer.spans == []
        assert tracer.retained == []
        assert tracer.finished_total == 0

    def test_violating_provisional_root_lands_in_retained_only(self):
        tracer = self.make(retention=RetentionPolicy())
        span = tracer.start_span("op", root=True, attrs={"shed": True})
        span.end()
        assert tracer.spans == []                 # not in the main ring
        assert tracer.finished_total == 0
        [kept] = tracer.retained
        assert kept is span
        assert kept.attrs["retention_reason"] == "shed"
        assert tracer.retained_total == 1

    def test_head_sampled_violating_root_lands_in_both(self):
        tracer = Tracer(registry=MetricsRegistry(), seed=7,
                        sample_rate=1.0, retention=RetentionPolicy())
        finish_root(tracer, shed=True)
        assert len(tracer.spans) == 1
        [kept] = tracer.retained
        assert kept.attrs["retention_reason"] == "shed"

    def test_full_head_sampling_retains_at_one_hundred_percent(self):
        """At any head rate, every violating root must be retained."""
        tracer = self.make(retention=RetentionPolicy())
        for i in range(100):
            finish_root(tracer, shed=(i % 3 == 0))
        assert tracer.retained_total == 34
        assert all(s.attrs["retention_reason"] == "shed"
                   for s in tracer.retained)


class TestRetainedRing:
    def test_ring_is_bounded_but_total_keeps_counting(self):
        tracer = Tracer(registry=MetricsRegistry(), seed=7,
                        sample_rate=0.0, retention=RetentionPolicy(),
                        max_retained=4)
        for _ in range(10):
            finish_root(tracer, shed=True)
        assert len(tracer.retained) == 4
        assert tracer.retained_total == 10

    def test_clear_empties_the_retained_ring(self):
        tracer = Tracer(registry=MetricsRegistry(), seed=7,
                        sample_rate=0.0, retention=RetentionPolicy())
        finish_root(tracer, shed=True)
        tracer.clear()
        assert tracer.retained == []
        assert tracer.retained_total == 0

    def test_configure_toggles_retention(self):
        tracer = Tracer(registry=MetricsRegistry(), seed=7, sample_rate=0.0)
        assert tracer.start_span("op", root=True) is NOOP_SPAN
        tracer.configure(retention=RetentionPolicy())
        assert tracer.start_span("op", root=True) is not NOOP_SPAN
        tracer.configure(retention=None)
        assert tracer.start_span("op", root=True) is NOOP_SPAN

    def test_retention_survives_main_ring_eviction_under_threads(self):
        """The regression the separate ring exists for: a tiny span ring
        churning under concurrent traffic must not evict SLO evidence."""
        tracer = Tracer(registry=MetricsRegistry(), seed=7,
                        sample_rate=1.0, retention=RetentionPolicy(),
                        max_spans=8)
        errors = []

        def worker(worker_id):
            try:
                for i in range(50):
                    span = tracer.start_span(
                        "serve.window", root=True,
                        attrs={"shed": True, "worker": worker_id})
                    span.end()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(tracer.spans) == 8              # main ring churned
        assert tracer.retained_total == 200          # evidence did not
        assert len(tracer.retained) == 200


class TestRetainedExport:
    def test_perfetto_marks_retained_roots_with_instants(self):
        tracer = Tracer(registry=MetricsRegistry(), seed=7,
                        sample_rate=0.0, retention=RetentionPolicy())
        finish_root(tracer, shed=True)
        doc = json.loads(chrome_trace_json(tracer.retained))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["retained:shed"]
        assert instants[0]["args"]["retention_reason"] == "shed"
