"""Shared fixtures.

Expensive artifacts (encoded bitstreams, corpora) are session-scoped so the
suite stays fast while many tests share them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.android.app import build_app_catalog
from repro.datasets.corpora import EMOVO_SPEC, build_corpus
from repro.video.encoder import Encoder, EncoderConfig
from repro.video.frames import synthetic_video


@pytest.fixture(scope="session")
def small_corpus():
    """A small EMOVO-like feature corpus (7 classes x 10 samples)."""
    return build_corpus(EMOVO_SPEC, n_per_class=10, seed=0)


@pytest.fixture(scope="session")
def tiny_clip():
    """Six 32x32 frames (fast codec tests)."""
    return synthetic_video(6, height=32, width=32, seed=0)


@pytest.fixture(scope="session")
def tiny_stream(tiny_clip):
    """Encoded bitstream of the tiny clip (one GOP with B frames)."""
    return Encoder(EncoderConfig(gop_size=6)).encode(tiny_clip)


@pytest.fixture(scope="session")
def clip_12():
    """Twelve 48x48 frames covering a full I/P/B GOP."""
    return synthetic_video(12, height=48, width=48, seed=1)


@pytest.fixture(scope="session")
def stream_12(clip_12):
    return Encoder(EncoderConfig(gop_size=12)).encode(clip_12)


@pytest.fixture(scope="session")
def catalog_44():
    """The paper's 44-app catalog."""
    return build_app_catalog(44, seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
