"""Adaptive degradation: tier ladder, controller hysteresis, battery, runtime."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.affect.pipeline import AffectClassifierPipeline
from repro.datasets import emovo_like
from repro.datasets.speech import synthesize_utterance
from repro.hw.power import DeviceBattery
from repro.obs import get_registry
from repro.obs.slo import SLObjective
from repro.serve import (
    AdaptiveConfig,
    AdaptiveController,
    AffectServer,
    ServeConfig,
    SessionManager,
    TierLadder,
    TierSpec,
    ladder_from_pipeline,
    window_hash,
)


def fixed_predict(index: int):
    return lambda x: np.full(len(x), index, dtype=int)


def dummy_ladder() -> TierLadder:
    """Four rungs with constant predicts — no training required."""
    return TierLadder((
        TierSpec("full", fixed_predict(0), 1.0),
        TierSpec("small", fixed_predict(1), 0.3),
        TierSpec("tiny", fixed_predict(2), 0.05),
        TierSpec("neutral", None, 0.001),
    ))


def make_session(now: float = 0.0):
    mgr = SessionManager(idle_ttl_s=1000.0, stale_ttl_s=None)
    return mgr.get_or_create("u", now), mgr


@pytest.fixture(scope="module")
def pipeline():
    corpus = emovo_like(n_per_class=4, seed=0)
    p = AffectClassifierPipeline("mlp", seed=0)
    p.train(corpus, epochs=3)
    return p


class TestTierLadder:
    def test_needs_two_tiers(self):
        with pytest.raises(ValueError):
            TierLadder((TierSpec("neutral", None, 0.0),))

    def test_last_tier_must_be_terminal(self):
        with pytest.raises(ValueError):
            TierLadder((
                TierSpec("a", fixed_predict(0), 1.0),
                TierSpec("b", fixed_predict(1), 0.5),
            ))

    def test_terminal_only_last(self):
        with pytest.raises(ValueError):
            TierLadder((
                TierSpec("a", None, 1.0),
                TierSpec("b", None, 0.5),
            ))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TierLadder((
                TierSpec("a", fixed_predict(0), 1.0),
                TierSpec("a", fixed_predict(1), 0.5),
                TierSpec("neutral", None, 0.0),
            ))

    def test_lookup_and_predict_map(self):
        ladder = dummy_ladder()
        assert ladder.names == ("full", "small", "tiny", "neutral")
        assert ladder.terminal_index == 3
        assert ladder.spec("tiny").window_energy == 0.05
        assert set(ladder.predict_map()) == {"full", "small", "tiny"}


class TestAdaptiveConfigValidation:
    def test_promote_must_sit_below_demote(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(promote_queue_frac=0.6, demote_queue_frac=0.5)
        with pytest.raises(ValueError):
            AdaptiveConfig(promote_burn=1.5, demote_burn=1.0)

    def test_emergency_above_demote(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(demote_queue_frac=0.9, emergency_queue_frac=0.8)

    def test_battery_fields(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(battery_capacity=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(initial_battery_fraction=0.0)


class TestControllerHysteresis:
    def test_calm_stays_at_top(self):
        ctrl = AdaptiveController(dummy_ladder())
        session, _ = make_session()
        for k in range(20):
            tier = ctrl.tier_for(session, k * 0.1, queue_depth=0, max_queue=48)
        assert tier.name == "full"
        assert ctrl.demotions == 0 and ctrl.promotions == 0

    def test_demotes_one_rung_per_dwell(self):
        ctrl = AdaptiveController(dummy_ladder())
        session, _ = make_session()
        assert ctrl.tier_for(session, 0.0, 30, 48).name == "small"
        # Same instant: dwell blocks the second step.
        assert ctrl.tier_for(session, 0.0, 30, 48).name == "small"
        assert ctrl.tier_for(session, 0.3, 30, 48).name == "tiny"
        assert ctrl.tier_for(session, 0.6, 30, 48).name == "neutral"
        assert session.tier_demotions == 3

    def test_emergency_jumps_to_terminal(self):
        ctrl = AdaptiveController(dummy_ladder())
        session, _ = make_session()
        tier = ctrl.tier_for(session, 0.0, 47, 48)
        assert tier.name == "neutral"
        assert session.tier_demotions == 1

    def test_promotion_needs_uninterrupted_calm(self):
        config = AdaptiveConfig(promote_dwell_s=2.0)
        ctrl = AdaptiveController(dummy_ladder(), config)
        session, _ = make_session()
        ctrl.tier_for(session, 0.0, 47, 48)          # -> neutral
        ctrl.tier_for(session, 1.0, 0, 48)           # calm starts
        assert session.calm_since == 1.0
        # Dead-band pressure interrupts the calm stretch.
        ctrl.tier_for(session, 2.0, 20, 48)
        assert session.calm_since is None
        ctrl.tier_for(session, 3.0, 0, 48)           # calm restarts
        assert ctrl.tier_for(session, 4.0, 0, 48).name == "neutral"
        tier = ctrl.tier_for(session, 5.1, 0, 48)    # 2.1 s of calm
        assert tier.name == "tiny"
        assert session.tier_promotions == 1
        # Each further rung needs its own full dwell.
        assert ctrl.tier_for(session, 5.2, 0, 48).name == "tiny"
        assert ctrl.tier_for(session, 7.3, 0, 48).name == "small"

    def test_steady_dead_band_never_flaps(self):
        ctrl = AdaptiveController(dummy_ladder())
        session, _ = make_session()
        ctrl.tier_for(session, 0.0, 30, 48)  # one demotion
        for k in range(50):
            ctrl.tier_for(session, 1.0 + k * 0.1, 15, 48)  # dead band
        assert session.tier_index == 1
        assert ctrl.demotions == 1 and ctrl.promotions == 0

    def test_burn_signal_demotes_without_queue_pressure(self):
        objective = SLObjective(
            name="lat", kind="latency", metric="serve.latency_s",
            threshold=0.5, target=0.95,
        )
        config = AdaptiveConfig(burn_sample_interval_s=0.1)
        ctrl = AdaptiveController(dummy_ladder(), config,
                                  objectives=(objective,))
        session, _ = make_session()
        reg = get_registry()
        reg.reset()
        for _ in range(100):
            reg.observe("serve.latency_s", 0.01)
        ctrl.observe(reg, 0.0)
        assert ctrl.tier_for(session, 0.1, 0, 48).name == "full"
        for _ in range(50):
            reg.observe("serve.latency_s", 2.0)  # the spike
        ctrl.observe(reg, 1.0)
        tier = ctrl.tier_for(session, 1.1, 0, 48)
        assert tier.name == "small"
        assert session.tier_demotions == 1

    def test_tier_change_counters_labeled(self):
        get_registry().reset()
        ctrl = AdaptiveController(dummy_ladder())
        session, _ = make_session()
        ctrl.tier_for(session, 0.0, 47, 48)
        counters = get_registry().snapshot()["counters"]
        assert counters['serve.tier_changes{direction="demote"}'] == 1


class TestBatteryBudget:
    def test_battery_attached_on_first_evaluate(self):
        config = AdaptiveConfig(battery_capacity=10.0,
                                initial_battery_fraction=0.5)
        ctrl = AdaptiveController(dummy_ladder(), config)
        session, _ = make_session()
        ctrl.tier_for(session, 0.0, 0, 48)
        assert session.battery is not None
        assert session.battery.fraction == pytest.approx(0.5)

    def test_floor_forces_demotion_and_caps_promotion(self):
        config = AdaptiveConfig(battery_capacity=10.0,
                                initial_battery_fraction=0.2,
                                promote_dwell_s=1.0)
        ctrl = AdaptiveController(dummy_ladder(), config)
        session, _ = make_session()
        # 20% charge -> floor at tier 1, even in a calm queue.
        assert ctrl.tier_for(session, 0.0, 0, 48).name == "small"
        assert session.tier_demotions == 1
        # A long calm stretch must not promote above the floor.
        for k in range(40):
            tier = ctrl.tier_for(session, 1.0 + k * 0.2, 0, 48)
        assert tier.name == "small"
        assert ctrl.promotions == 0

    def test_drain_sinks_the_tier(self):
        config = AdaptiveConfig(battery_capacity=10.0)
        ctrl = AdaptiveController(dummy_ladder(), config)
        session, _ = make_session()
        now = 0.0
        names = []
        for k in range(40):
            tier = ctrl.tier_for(session, now, 0, 48)
            ctrl.charge(session, tier.name)
            names.append(tier.name)
            now += 0.1
        # 10 units at 1.0/window: ~8 full windows, then the floors bite.
        assert names[0] == "full"
        assert "small" in names and names[-1] in ("tiny", "neutral")
        assert session.battery.fraction < 0.1

    def test_charge_accounts_only_what_the_battery_held(self):
        config = AdaptiveConfig(battery_capacity=10.0,
                                initial_battery_fraction=0.05)
        ctrl = AdaptiveController(dummy_ladder(), config)
        session, _ = make_session()
        ctrl.tier_for(session, 0.0, 0, 48)
        for _ in range(100):
            ctrl.charge(session, "full")
        assert ctrl.energy_drained <= 0.5 + 1e-9
        assert session.battery.empty

    def test_degraded_window_pays_fallback_energy(self):
        ctrl = AdaptiveController(dummy_ladder())
        session, _ = make_session()
        ctrl.charge(session, "full", degraded=True)
        assert ctrl.energy_drained < 0.01
        assert ctrl.tier_windows["full"] == 1


class TestDeviceBattery:
    def test_drain_clamps_at_empty(self):
        battery = DeviceBattery(capacity=2.0, level=0.5)
        assert battery.drain(0.2) == pytest.approx(0.2)
        assert battery.drain(1.0) == pytest.approx(0.3)
        assert battery.empty
        assert battery.drain(1.0) == 0.0
        assert battery.drained == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceBattery(capacity=0.0)
        with pytest.raises(ValueError):
            DeviceBattery(capacity=1.0, level=2.0)


class TestEvictionTierRace:
    """Idle eviction racing a tier change must not resurrect the session."""

    def test_stale_reference_cannot_resurrect_session(self):
        config = AdaptiveConfig(battery_capacity=5.0)
        ctrl = AdaptiveController(dummy_ladder(), config)
        mgr = SessionManager(idle_ttl_s=1.0, stale_ttl_s=None)
        stale = mgr.get_or_create("u", 0.0)
        ctrl.tier_for(stale, 0.0, 47, 48)      # demote to terminal
        assert stale.tier_index == 3
        assert mgr.evict_idle(10.0) == 1
        assert "u" not in mgr
        # The racing tier change lands on the evicted object...
        ctrl.tier_for(stale, 10.0, 0, 48)
        assert "u" not in mgr                   # ...and resurrects nothing.
        fresh = mgr.get_or_create("u", 11.0)
        assert fresh is not stale
        assert fresh.tier_index == 0            # no tier-state leak
        assert fresh.battery is None
        assert fresh.calm_since is None

    def test_threaded_eviction_vs_tier_change(self):
        config = AdaptiveConfig(battery_capacity=5.0)
        ctrl = AdaptiveController(dummy_ladder(), config)
        mgr = SessionManager(idle_ttl_s=0.5, stale_ttl_s=None)
        stop = threading.Event()
        errors: list[Exception] = []
        clock = [0.0]

        def churn():
            try:
                while not stop.is_set():
                    t = clock[0]
                    session = mgr.get_or_create("u", t)
                    ctrl.tier_for(session, t, 47, 48)
                    clock[0] = t + 0.01
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def evict():
            try:
                while not stop.is_set():
                    mgr.evict_idle(clock[0] + 10.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn),
                   threading.Thread(target=evict)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert not errors
        # Post-race: a fresh session starts at the top with clean state.
        mgr.evict_idle(clock[0] + 100.0)
        fresh = mgr.get_or_create("u", clock[0] + 101.0)
        assert fresh.tier_index == 0
        assert fresh.battery is None
        assert fresh.tier_demotions == 0


class TestAdaptiveServer:
    def test_flood_absorbs_instead_of_shedding(self, pipeline):
        get_registry().reset()
        ladder = ladder_from_pipeline(pipeline)
        ctrl = AdaptiveController(ladder)
        config = ServeConfig(max_batch=64, max_wait_s=0.25, max_queue=16,
                             stale_ttl_s=None)
        server = AffectServer(pipeline, config, adaptive=ctrl)
        labels = pipeline.classifier.label_names
        results = []
        for i in range(48):
            wave = synthesize_utterance(labels[i % len(labels)],
                                        actor=i % 4, sentence=i % 3, take=i)
            results.extend(server.submit(f"u{i:03d}", wave, 0.0))
        results.extend(server.drain(0.5))
        assert server.shed == 0
        assert server.absorbed > 0
        assert server.dropped == 0
        assert len(results) == 48
        assert all(r.tier is not None for r in results)
        # Terminal-rung instant answers carry the structured outcome the
        # daemon serializes over the wire.
        assert sum(1 for r in results
                   if r.outcome == "absorbed") == server.absorbed
        counters = get_registry().snapshot()["counters"]
        tiered = {k: v for k, v in counters.items()
                  if k.startswith("serve.tier_windows")}
        assert sum(tiered.values()) == 48
        assert server.stats()["adaptive"]["demotions"] > 0

    def test_recovery_after_pressure(self, pipeline):
        get_registry().reset()
        ladder = ladder_from_pipeline(pipeline)
        ctrl = AdaptiveController(
            ladder,
            AdaptiveConfig(promote_dwell_s=0.5, burn_horizon_s=1.0,
                           burn_sample_interval_s=0.25),
        )
        config = ServeConfig(max_batch=64, max_wait_s=0.1, max_queue=16,
                             stale_ttl_s=None)
        server = AffectServer(pipeline, config, adaptive=ctrl)
        labels = pipeline.classifier.label_names
        for i in range(15):                      # pressure: demote
            wave = synthesize_utterance(labels[i % len(labels)], take=i)
            server.submit("u", wave, 0.0)
        session = server.sessions.get("u")
        assert session.tier_index > 0
        calm_wave = synthesize_utterance("neutral", take=99)
        now = 1.0
        for k in range(15):                      # calm windows
            server.poll(now)
            server.submit("u", calm_wave, now)
            now += 0.3
        server.drain(now)
        assert session.tier_promotions > 0
        assert session.tier_index < ladder.terminal_index

    def test_degraded_tier_never_backfills_cache_label(self, pipeline):
        get_registry().reset()
        ladder = ladder_from_pipeline(pipeline)
        ctrl = AdaptiveController(ladder)
        config = ServeConfig(max_batch=4, max_wait_s=0.1, max_queue=64,
                             stale_ttl_s=None)
        server = AffectServer(pipeline, config, adaptive=ctrl)
        wave = synthesize_utterance(pipeline.classifier.label_names[0],
                                    take=1)
        key = window_hash(wave)
        # Pin the session to the int8 rung: no signals change it within
        # one calm submit (promotion needs a dwell, demotion pressure).
        session = server.sessions.get_or_create("degraded", 0.0)
        session.tier_index = 1
        server.submit("degraded", wave, 0.0)
        server.drain(0.2)
        entry = server.cache.peek(key)
        assert entry.features is not None        # DSP backfill still on
        assert entry.label is None               # int8 answer not cached
        # A top-tier session classifies the same window: now it caches.
        server.submit("top", wave, 1.0)
        server.drain(1.2)
        assert server.cache.peek(key).label is not None

    def test_without_controller_results_carry_no_tier(self, pipeline):
        server = AffectServer(pipeline, ServeConfig(stale_ttl_s=None))
        wave = synthesize_utterance("neutral", take=2)
        server.submit("u", wave, 0.0)
        results = server.drain(0.5)
        assert all(r.tier is None for r in results)
        assert "adaptive" not in server.stats()
