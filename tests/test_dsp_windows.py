"""Tests for repro.dsp.windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.windows import frame_signal, hamming_window, hann_window


class TestWindows:
    def test_hann_endpoints_and_peak(self):
        w = hann_window(64)
        assert w[0] == pytest.approx(0.0)
        assert w.max() == pytest.approx(1.0, abs=1e-3)

    def test_hamming_floor(self):
        w = hamming_window(64)
        assert w.min() == pytest.approx(0.08, abs=1e-3)
        assert w.max() <= 1.0

    def test_length_one(self):
        assert hann_window(1).tolist() == [1.0]
        assert hamming_window(1).tolist() == [1.0]

    @pytest.mark.parametrize("factory", [hann_window, hamming_window])
    def test_invalid_length_raises(self, factory):
        with pytest.raises(ValueError):
            factory(0)

    def test_hann_symmetry(self):
        w = hann_window(128)
        # Periodic window: w[k] == w[N-k] for k >= 1.
        assert np.allclose(w[1:], w[1:][::-1])


class TestFrameSignal:
    def test_exact_fit_no_padding(self):
        frames = frame_signal(np.arange(10.0), 5, 5)
        assert frames.shape == (2, 5)
        assert frames[1, 0] == 5.0

    def test_overlapping_frames(self):
        frames = frame_signal(np.arange(8.0), 4, 2)
        assert frames.shape[1] == 4
        assert frames[1].tolist() == [2.0, 3.0, 4.0, 5.0]

    def test_padding_covers_tail(self):
        signal = np.ones(7)
        frames = frame_signal(signal, 4, 4, pad=True)
        assert frames.shape == (2, 4)
        assert frames[1].tolist() == [1.0, 1.0, 1.0, 0.0]

    def test_no_padding_drops_tail(self):
        frames = frame_signal(np.ones(7), 4, 4, pad=False)
        assert frames.shape == (1, 4)

    def test_short_signal_no_pad_empty(self):
        frames = frame_signal(np.ones(3), 4, 2, pad=False)
        assert frames.shape == (0, 4)

    def test_empty_signal(self):
        assert frame_signal(np.array([]), 4, 2).shape == (0, 4)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            frame_signal(np.ones((3, 3)), 2, 1)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            frame_signal(np.ones(8), 0, 1)
        with pytest.raises(ValueError):
            frame_signal(np.ones(8), 4, 0)

    @given(
        n=st.integers(1, 200),
        frame=st.integers(1, 32),
        hop=st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_all_samples_covered_with_padding(self, n, frame, hop):
        signal = np.arange(1.0, n + 1.0)
        frames = frame_signal(signal, frame, hop, pad=True)
        needed = (frames.shape[0] - 1) * hop + frame
        assert needed >= n
        # Reconstruct: sample k appears at frame k // hop (first frame that
        # contains it) when hop <= frame.
        if hop <= frame:
            flattened = set()
            for i in range(frames.shape[0]):
                for j in range(frame):
                    value = frames[i, j]
                    if value > 0:
                        flattened.add(value)
            assert flattened == set(signal.tolist())
