"""Tests for the 4x4 transform/quantization and CAVLC-style coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.video.bitstream import BitReader, BitWriter
from repro.video.cavlc import (
    ZIGZAG,
    decode_block,
    encode_block,
    inverse_zigzag,
    zigzag_scan,
)
from repro.video.transform import (
    CF,
    dequantize_and_inverse,
    dequantize_block,
    forward_transform_4x4,
    inverse_transform_4x4,
    quantize_block,
    transform_and_quantize,
)

_blocks = hnp.arrays(np.int64, (4, 4), elements=st.integers(-255, 255))


class TestTransform:
    def test_forward_rows_orthogonal(self):
        gram = CF @ CF.T
        assert np.array_equal(np.diag(np.diag(gram)), gram)
        assert np.diag(gram).tolist() == [4, 10, 4, 10]

    def test_dc_block(self):
        block = np.full((4, 4), 7)
        coeffs = forward_transform_4x4(block)
        assert coeffs[0, 0] == 16 * 7
        assert np.count_nonzero(coeffs) == 1

    def test_qp0_near_lossless(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            block = rng.integers(-100, 100, (4, 4))
            rec = dequantize_and_inverse(transform_and_quantize(block, 0), 0)
            assert np.abs(rec - block).max() <= 6

    @given(_blocks, st.integers(0, 51))
    @settings(max_examples=80, deadline=None)
    def test_property_error_bounded_by_qstep(self, block, qp):
        rec = dequantize_and_inverse(transform_and_quantize(block, qp), qp)
        qstep = 0.625 * 2 ** (qp / 6.0)
        # Worst case: each coefficient's deadzone rounding is off by up to
        # 2/3 of a step and the inverse transform accumulates them with
        # column-abs-sum 5 per axis -> 25 * (2/3) * qstep, plus the +-0.5
        # rounding of the final >> 6.
        assert np.abs(rec - block).max() <= 25.0 / 1.5 * qstep + 8.0

    @given(st.integers(0, 45))
    @settings(max_examples=20, deadline=None)
    def test_property_coarser_qp_never_more_levels(self, qp):
        block = np.random.default_rng(7).integers(-120, 120, (4, 4))
        fine = np.abs(transform_and_quantize(block, qp)).sum()
        coarse = np.abs(transform_and_quantize(block, qp + 6)).sum()
        assert coarse <= fine

    def test_invalid_qp(self):
        block = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(ValueError):
            quantize_block(block, 52)
        with pytest.raises(ValueError):
            dequantize_block(block, -1)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            forward_transform_4x4(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            inverse_transform_4x4(np.zeros((4, 5)))

    def test_zero_block_stays_zero(self):
        zero = np.zeros((4, 4), dtype=np.int64)
        assert np.all(transform_and_quantize(zero, 30) == 0)
        assert np.all(dequantize_and_inverse(zero, 30) == 0)


class TestZigzag:
    def test_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(16))

    def test_roundtrip(self):
        block = np.arange(16).reshape(4, 4)
        assert np.array_equal(inverse_zigzag(zigzag_scan(block)), block)

    def test_low_frequency_first(self):
        block = np.zeros((4, 4), dtype=np.int64)
        block[0, 0] = 9
        scanned = zigzag_scan(block)
        assert scanned[0] == 9
        assert np.all(scanned[1:] == 0)


class TestCavlc:
    @given(_blocks)
    @settings(max_examples=100, deadline=None)
    def test_property_block_roundtrip(self, block):
        w = BitWriter()
        encode_block(w, block)
        r = BitReader(w.to_bytes())
        assert np.array_equal(decode_block(r), block)

    def test_empty_block_is_one_codeword(self):
        w = BitWriter()
        encode_block(w, np.zeros((4, 4), dtype=np.int64))
        assert len(w) == 1  # ue(0) == "1"

    def test_busier_blocks_cost_more_bits(self):
        sparse = np.zeros((4, 4), dtype=np.int64)
        sparse[0, 0] = 3
        dense = np.full((4, 4), 3, dtype=np.int64)
        w1, w2 = BitWriter(), BitWriter()
        encode_block(w1, sparse)
        encode_block(w2, dense)
        assert len(w2) > len(w1)

    def test_corrupt_count_rejected(self):
        w = BitWriter()
        w.write_ue(17)
        with pytest.raises(ValueError):
            decode_block(BitReader(w.to_bytes()))

    def test_corrupt_run_rejected(self):
        w = BitWriter()
        w.write_ue(1)   # one coefficient
        w.write_ue(16)  # run past the end
        w.write_se(1)
        with pytest.raises(ValueError):
            decode_block(BitReader(w.to_bytes()))
