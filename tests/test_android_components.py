"""Tests for the Android simulator components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.app import AppSpec, apps_by_category, build_app_catalog
from repro.android.memory import FlashModel, MemoryModel
from repro.android.policies import FifoKillPolicy, LruKillPolicy
from repro.android.process import ProcessRecord, ProcessState
from repro.android.tracer import Tracer
from repro.datasets.phone_usage import APP_CATEGORIES


class TestCatalog:
    def test_44_apps_cover_all_categories(self, catalog_44):
        assert len(catalog_44) == 44
        categories = {app.category for app in catalog_44}
        assert categories == set(APP_CATEGORIES)

    def test_unique_names(self, catalog_44):
        names = [app.name for app in catalog_44]
        assert len(set(names)) == 44

    def test_system_apps_flagged(self, catalog_44):
        system = [app for app in catalog_44 if app.is_system]
        assert system
        assert all(app.category in ("Settings", "System_App") for app in system)

    def test_footprints_positive(self, catalog_44):
        for app in catalog_44:
            assert app.ram_mb > 0
            assert app.flash_load_mb > 0
            assert app.flash_load_bytes == int(app.flash_load_mb * 1024 * 1024)

    def test_too_few_apps_rejected(self):
        with pytest.raises(ValueError):
            build_app_catalog(5)

    def test_grouping(self, catalog_44):
        grouped = apps_by_category(catalog_44)
        assert sum(len(v) for v in grouped.values()) == 44


class TestMemoryModel:
    def _app(self, ram=100.0):
        return AppSpec("test", "Messaging", ram, 50.0)

    def test_allocate_release(self):
        mem = MemoryModel(capacity_mb=2048, system_reserved_mb=1024)
        app = self._app(512.0)
        mem.allocate(app)
        assert mem.available_mb == pytest.approx(512.0)
        mem.release(app)
        assert mem.used_mb == 0.0

    def test_cannot_overcommit(self):
        mem = MemoryModel(capacity_mb=1200, system_reserved_mb=1024)
        with pytest.raises(MemoryError):
            mem.allocate(self._app(200.0))

    def test_release_more_than_allocated(self):
        mem = MemoryModel()
        with pytest.raises(ValueError):
            mem.release(self._app(10.0))

    def test_reserved_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(capacity_mb=512, system_reserved_mb=512)

    @given(st.lists(st.floats(1.0, 500.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_property_accounting_invariants(self, sizes):
        mem = MemoryModel(capacity_mb=4096, system_reserved_mb=1024)
        allocated = []
        for i, size in enumerate(sizes):
            app = AppSpec(f"a{i}", "Messaging", size, 10.0)
            if mem.can_fit(app):
                mem.allocate(app)
                allocated.append(app)
            assert 0.0 <= mem.used_mb <= mem.capacity_mb - mem.system_reserved_mb + 1e-9
        for app in allocated:
            mem.release(app)
        assert mem.used_mb == pytest.approx(0.0)


class TestFlashModel:
    def test_load_accounting(self):
        flash = FlashModel(read_mb_per_s=100.0, init_overhead_s=0.5)
        app = AppSpec("x", "Video", 200.0, 100.0)
        load_bytes, load_time = flash.load(app)
        assert load_bytes == 100 * 1024 * 1024
        assert load_time == pytest.approx(1.0 + 0.5)
        assert flash.loads == 1
        assert flash.total_loaded_bytes == load_bytes


class TestProcessRecord:
    def _proc(self):
        return ProcessRecord(app=AppSpec("x", "Video", 100.0, 50.0))

    def test_lifecycle(self):
        proc = self._proc()
        proc.start(1.0)
        assert proc.state == ProcessState.FOREGROUND
        proc.to_background(2.0)
        assert proc.state == ProcessState.BACKGROUND
        proc.kill(5.0)
        assert proc.state == ProcessState.DEAD
        assert proc.spans == [(1.0, 5.0)]
        assert proc.kills == 1

    def test_double_start_rejected(self):
        proc = self._proc()
        proc.start(0.0)
        with pytest.raises(RuntimeError):
            proc.start(1.0)

    def test_kill_dead_rejected(self):
        with pytest.raises(RuntimeError):
            self._proc().kill(1.0)

    def test_close_ends_open_span(self):
        proc = self._proc()
        proc.start(1.0)
        proc.close(9.0)
        assert proc.spans == [(1.0, 9.0)]
        assert proc.kills == 0

    def test_restart_after_kill(self):
        proc = self._proc()
        proc.start(0.0)
        proc.to_background(1.0)
        proc.kill(2.0)
        proc.start(3.0)
        proc.close(4.0)
        assert proc.spans == [(0.0, 2.0), (3.0, 4.0)]
        assert proc.cold_starts == 2


class TestPolicies:
    def _procs(self):
        a = ProcessRecord(app=AppSpec("a", "Video", 1, 1))
        b = ProcessRecord(app=AppSpec("b", "Video", 1, 1))
        a.start(0.0)
        b.start(5.0)
        a.to_background(6.0)
        b.to_background(6.0)
        a.last_used = 10.0
        b.last_used = 5.0
        return a, b

    def test_fifo_kills_oldest_start(self):
        a, b = self._procs()
        assert FifoKillPolicy().choose_victim([a, b]) is a

    def test_lru_kills_least_recently_used(self):
        a, b = self._procs()
        assert LruKillPolicy().choose_victim([a, b]) is b

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FifoKillPolicy().choose_victim([])
        with pytest.raises(ValueError):
            LruKillPolicy().choose_victim([])


class TestTracer:
    def test_event_aggregation(self):
        tracer = Tracer()
        tracer.record(0.0, "cold_start", "a", detail=100.0)
        tracer.record(1.0, "kill", "a")
        tracer.record(2.0, "cold_start", "b", detail=50.0)
        assert tracer.count("cold_start") == 2
        assert tracer.cold_start_bytes() == 150.0
        assert tracer.kills_of("a") == 1
        assert [e.kind for e in tracer.timeline("a")] == ["cold_start", "kill"]
