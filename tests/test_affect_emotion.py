"""Tests for the circumplex model and emotion stream."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.affect.emotion import (
    AffectPoint,
    EMOTION_COORDINATES,
    Emotion,
    mood_angle,
    nearest_emotion,
)
from repro.affect.stream import EmotionStream


class TestAffectPoint:
    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            AffectPoint(1.5, 0.0)
        with pytest.raises(ValueError):
            AffectPoint(0.0, 0.0, -1.1)

    def test_intensity(self):
        p = AffectPoint(0.6, 0.8)
        assert p.intensity == pytest.approx(1.0)

    def test_distance_symmetric(self):
        a = AffectPoint(0.1, 0.2, 0.3)
        b = AffectPoint(-0.4, 0.5, -0.6)
        assert a.distance(b) == pytest.approx(b.distance(a))


class TestMoodAngle:
    def test_cardinal_directions(self):
        assert mood_angle(1.0, 0.0) == pytest.approx(0.0)
        assert mood_angle(0.0, 1.0) == pytest.approx(90.0)
        assert mood_angle(-1.0, 0.0) == pytest.approx(180.0)
        assert mood_angle(0.0, -1.0) == pytest.approx(270.0)

    def test_origin_defined(self):
        assert mood_angle(0.0, 0.0) == 0.0

    @given(st.floats(-1, 1), st.floats(-1, 1))
    @settings(max_examples=50, deadline=None)
    def test_property_range(self, v, a):
        angle = mood_angle(v, a)
        assert 0.0 <= angle < 360.0


class TestNearestEmotion:
    def test_self_coordinates_map_to_self(self):
        for emotion, point in EMOTION_COORDINATES.items():
            assert nearest_emotion(point) == emotion

    def test_happy_quadrant(self):
        got = nearest_emotion(AffectPoint(0.75, 0.35, 0.4))
        assert got == Emotion.HAPPY

    def test_candidate_restriction(self):
        got = nearest_emotion(
            AffectPoint(0.8, 0.4), candidates=(Emotion.SAD, Emotion.ANGRY)
        )
        assert got in (Emotion.SAD, Emotion.ANGRY)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            nearest_emotion(AffectPoint(0, 0), candidates=())

    def test_circumplex_quadrants_consistent(self):
        """High-arousal/positive-valence emotions sit in the first quadrant."""
        for emotion in (Emotion.HAPPY, Emotion.EXCITED):
            p = EMOTION_COORDINATES[emotion]
            assert p.valence > 0 and p.arousal > 0
        for emotion in (Emotion.SAD, Emotion.BORED):
            p = EMOTION_COORDINATES[emotion]
            assert p.valence < 0 and p.arousal < 0


class TestEmotionStream:
    def test_single_label_commits(self):
        stream = EmotionStream(window=3)
        stream.push("happy", 0)
        stream.push("happy", 1)
        assert stream.current == "happy"

    def test_flicker_suppressed(self):
        stream = EmotionStream(window=5)
        for t in range(5):
            stream.push("calm", t)
        stream.push("angry", 5)  # single flicker
        assert stream.current == "calm"
        for t in range(6, 9):
            stream.push("angry", t)
        assert stream.current == "angry"

    def test_events_record_transitions(self):
        stream = EmotionStream(window=3)
        for t, label in enumerate(["a", "a", "b", "b", "b"]):
            stream.push(label, t)
        emotions = [e.emotion for e in stream.events]
        assert emotions == ["a", "b"]

    def test_min_votes_hysteresis(self):
        stream = EmotionStream(window=4, min_votes=4)
        for t, label in enumerate(["x", "x", "x", "y"]):
            stream.push(label, t)
        assert stream.current is None  # never reached 4 identical votes

    def test_tied_vote_keeps_incumbent(self):
        # Regression: with min_votes <= window // 2, a challenger that only
        # *tied* the incumbent used to win on Counter insertion order.
        stream = EmotionStream(window=4, min_votes=2)
        for t, label in enumerate(["calm", "calm", "angry", "calm", "angry",
                                   "calm"]):
            stream.push(label, t)
        # Window is [angry, calm, angry, calm] — a 2-2 tie; hysteresis
        # must keep the committed "calm".
        assert stream.current == "calm"
        assert [e.emotion for e in stream.events] == ["calm"]
        # A strict lead still switches.
        stream.push("angry", 6)
        stream.push("angry", 7)
        assert stream.current == "angry"

    def test_reset(self):
        stream = EmotionStream(window=3)
        stream.push("a", 0)
        stream.push("a", 1)
        stream.reset()
        assert stream.current is None
        assert stream.events == []
        assert stream.last_timestamp is None

    def test_default_timestamps_advance_monotonically(self):
        # Regression: push() used to default timestamp to a constant 0.0,
        # so mixing explicit and defaulted pushes stamped events *before*
        # earlier ones and tripped the controller's non-monotonic clamp.
        stream = EmotionStream(window=1)
        stream.push("a", 10.0)
        stream.push("b")  # defaulted: must land after 10.0, not at 0.0
        stream.push("c")
        timestamps = [e.timestamp for e in stream.events]
        assert timestamps == [10.0, 11.0, 12.0]
        assert stream.last_timestamp == 12.0

    def test_default_timestamps_never_run_behind_explicit(self):
        from repro.core.controller import AffectDrivenSystemManager
        from repro.obs import get_registry

        get_registry().reset()
        manager = AffectDrivenSystemManager()
        manager.observe("happy", timestamp=5.0)
        for _ in range(4):
            manager.observe("happy")  # defaulted timestamps
        clamps = get_registry().counter(
            "core.controller.nonmonotonic_timestamps"
        ).value
        assert clamps == 0
        assert manager.last_observation_ts > 5.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            EmotionStream(window=0)

    def test_invalid_min_votes(self):
        with pytest.raises(ValueError):
            EmotionStream(window=3, min_votes=5)
