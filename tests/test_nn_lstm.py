"""Gradient-checked tests for the LSTM layer."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.lstm import LSTM
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from tests.test_nn_layers import check_layer_gradients


class TestLstmGradients:
    def test_last_state_gradients(self):
        x = np.random.default_rng(0).standard_normal((2, 4, 3))
        check_layer_gradients(LSTM(3), x, rtol=1e-3, atol=1e-6)

    def test_sequence_gradients(self):
        x = np.random.default_rng(1).standard_normal((2, 4, 3))
        check_layer_gradients(
            LSTM(3, return_sequences=True), x, rtol=1e-3, atol=1e-6
        )


class TestLstmShapes:
    def test_output_shapes(self):
        assert LSTM(8).output_shape((10, 4)) == (8,)
        assert LSTM(8, return_sequences=True).output_shape((10, 4)) == (10, 8)

    def test_param_count(self):
        layer = LSTM(6)
        layer.build((5, 4), np.random.default_rng(0))
        expected = 4 * (4 * 6 + 6 * 6 + 6)
        assert layer.n_params == expected

    def test_forget_bias_initialized_to_one(self):
        layer = LSTM(4)
        layer.build((5, 3), np.random.default_rng(0))
        b = layer.params["b"]
        assert np.all(b[4:8] == 1.0)
        assert np.all(b[:4] == 0.0)

    def test_rejects_flat_input(self):
        with pytest.raises(ValueError):
            LSTM(4).build((10,), np.random.default_rng(0))

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            LSTM(0)


class TestLstmLearning:
    def test_learns_temporal_order(self):
        """An LSTM must separate sequences that differ only in ordering."""
        rng = np.random.default_rng(2)
        n, t = 160, 8
        x = np.zeros((n, t, 1))
        y = rng.integers(0, 2, n)
        for i in range(n):
            # Class 0: pulse early; class 1: pulse late — same total energy.
            position = 1 if y[i] == 0 else t - 2
            x[i, position, 0] = 1.0
        x += 0.05 * rng.standard_normal(x.shape)
        model = Sequential([LSTM(8), Dense(2)])
        model.compile((t, 1), Adam(0.02))
        model.fit(x, y, epochs=30, batch_size=32)
        assert model.evaluate(x, y) > 0.95

    def test_stateless_between_calls(self):
        layer = LSTM(4)
        layer.build((6, 2), np.random.default_rng(0))
        x = np.random.default_rng(3).standard_normal((1, 6, 2))
        first = layer.forward(x)
        second = layer.forward(x)
        assert np.allclose(first, second)
