"""Batched DSP front-end parity and accounting.

The serve runtime's flush-time DSP rides on one invariant: a window
extracted through :func:`extract_feature_matrix_batch` is identical to
the same window through :func:`extract_feature_matrix`.  These tests pin
that equality (exact, not approximate — the batch path reuses the single
path's arithmetic), the frame-count truncation accounting, and the
workspace reuse the hot path depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import features as features_module
from repro.dsp.features import (
    FeatureConfig,
    extract_feature_matrix,
    extract_feature_matrix_batch,
)
from repro.dsp.windows import frame_count
from repro.errors import SensorError
from repro.obs import get_registry


def _signal(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n) / 16000.0
    return (
        np.sin(2 * np.pi * 220.0 * t)
        + 0.3 * np.sin(2 * np.pi * 570.0 * t)
        + 0.05 * rng.standard_normal(n)
    )


CONFIGS = [
    FeatureConfig(),
    FeatureConfig(deltas=True),
    FeatureConfig(hop_length=128),
    FeatureConfig(n_fft=256, hop_length=80, n_mels=20, n_mfcc=10),
]


class TestBatchSingleParity:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_exact_parity_uniform_lengths(self, config):
        signals = [_signal(16000, seed=i) for i in range(4)]
        batched = extract_feature_matrix_batch(signals, config)
        for signal, matrix in zip(signals, batched):
            single = extract_feature_matrix(signal, config)
            assert np.array_equal(matrix, single)

    def test_exact_parity_mixed_lengths_keeps_order(self):
        config = FeatureConfig()
        lengths = [16000, 12345, 8000, 16000, 300, 1, 12345]
        signals = [_signal(n, seed=i) for i, n in enumerate(lengths)]
        batched = extract_feature_matrix_batch(signals, config)
        assert len(batched) == len(signals)
        for signal, matrix in zip(signals, batched):
            assert np.array_equal(matrix, extract_feature_matrix(signal,
                                                                 config))

    def test_frame_counts_match_frame_count_helper(self):
        config = FeatureConfig()
        for n in (16000, 8000, 513, 512, 300, 1):
            matrix = extract_feature_matrix_batch([_signal(n)], config)[0]
            assert matrix.shape == (
                frame_count(n, config.n_fft, config.hop_length),
                config.n_features,
            )

    def test_empty_batch_and_empty_signal(self):
        config = FeatureConfig()
        assert extract_feature_matrix_batch([], config) == []
        matrix = extract_feature_matrix_batch([np.zeros(0)], config)[0]
        assert matrix.shape == (0, config.n_features)

    def test_rejects_non_1d_signals(self):
        with pytest.raises(ValueError):
            extract_feature_matrix_batch([np.zeros((4, 4))])

    def test_nonfinite_sanitize_matches_single_path(self):
        config = FeatureConfig()
        signal = _signal(4000)
        signal[100] = np.nan
        signal[2000] = np.inf
        batched = extract_feature_matrix_batch([signal], config)[0]
        single = extract_feature_matrix(signal, config)
        assert np.isfinite(batched).all()
        assert np.array_equal(batched, single)

    def test_nonfinite_raise_policy(self):
        signal = _signal(2000)
        signal[5] = np.nan
        with pytest.raises(SensorError):
            extract_feature_matrix_batch([signal], nonfinite="raise")


class TestTruncationAccounting:
    def test_standard_configs_never_truncate(self):
        obs = get_registry()
        obs.reset()
        for config in CONFIGS:
            extract_feature_matrix(_signal(7321), config)
            extract_feature_matrix_batch([_signal(5000)], config)
        counters = obs.snapshot()["counters"]
        assert "dsp.features.truncated_frames" not in counters

    def test_stage_disagreement_truncates_and_counts(self, monkeypatch):
        # All five stages share frame_signal's pad=True frame count, so
        # truncation cannot happen organically; shorten one stage to
        # prove the accounting catches a front-end regression.
        obs = get_registry()
        obs.reset()
        real_zcr = features_module.zero_crossing_rate

        def short_zcr(signal, frame_length, hop_length):
            return real_zcr(signal, frame_length, hop_length)[:-2]

        monkeypatch.setattr(features_module, "zero_crossing_rate", short_zcr)
        config = FeatureConfig()
        signal = _signal(16000)
        n_frames = frame_count(16000, config.n_fft, config.hop_length)
        matrix = extract_feature_matrix(signal, config)
        assert matrix.shape[0] == n_frames - 2
        counters = obs.snapshot()["counters"]
        # Four stages each lost 2 frames against the shortened minimum.
        assert counters["dsp.features.truncated_frames"] == 8


class TestBatchMetricsAndWorkspace:
    def test_batch_metrics_emitted(self):
        obs = get_registry()
        obs.reset()
        config = FeatureConfig()
        extract_feature_matrix_batch([_signal(4000, seed=i)
                                      for i in range(3)], config)
        counters = obs.snapshot()["counters"]
        assert counters["dsp.features.batch_calls"] == 1
        assert counters["dsp.features.batch_windows"] == 3
        assert counters["dsp.features.frames"] == 3 * frame_count(
            4000, config.n_fft, config.hop_length
        )

    def test_workspace_buffers_reused_across_flushes(self):
        workspace = features_module._workspace()
        first = workspace.get("probe", (64, 32))
        again = workspace.get("probe", (64, 32))
        assert np.shares_memory(first, again)
        smaller = workspace.get("probe", (16, 8))
        assert np.shares_memory(first, smaller)

    def test_workspace_is_per_thread(self):
        import threading

        workspaces = []

        def grab():
            workspaces.append(features_module._workspace())

        thread = threading.Thread(target=grab)
        thread.start()
        thread.join()
        assert workspaces[0] is not features_module._workspace()
