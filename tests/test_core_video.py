"""Tests for decoder modes, the video policy, and playback accounting."""

import pytest

from repro.core.modes import (
    DEFAULT_DELETION_PARAMS,
    DecoderMode,
    DeletionParams,
    decoder_config_for,
)
from repro.core.playback import (
    ModePowerTable,
    ModeResult,
    measure_mode_power,
    simulate_playback,
)
from repro.core.video_policy import PAPER_MODE_TABLE, VideoModePolicy


class TestModes:
    def test_paper_deletion_defaults(self):
        assert DEFAULT_DELETION_PARAMS.s_th == 140
        assert DEFAULT_DELETION_PARAMS.f == 1

    def test_mode_knobs(self):
        assert DecoderMode.STANDARD.deblocking_enabled
        assert not DecoderMode.STANDARD.deletes_nal_units
        assert not DecoderMode.DF_OFF.deblocking_enabled
        assert DecoderMode.DELETION.deletes_nal_units
        assert DecoderMode.DELETION.deblocking_enabled
        assert DecoderMode.COMBINED.deletes_nal_units
        assert not DecoderMode.COMBINED.deblocking_enabled

    def test_decoder_config_mapping(self):
        config = decoder_config_for(DecoderMode.COMBINED, DeletionParams(100, 2))
        assert not config.deblock_enabled
        assert config.selector.enabled
        assert config.selector.s_th == 100
        assert config.selector.f == 2

    def test_standard_config_disables_selector(self):
        config = decoder_config_for(DecoderMode.STANDARD)
        assert config.deblock_enabled
        assert not config.selector.enabled


class TestVideoPolicy:
    def test_paper_table(self):
        assert PAPER_MODE_TABLE["distracted"] == DecoderMode.COMBINED
        assert PAPER_MODE_TABLE["concentrated"] == DecoderMode.DELETION
        assert PAPER_MODE_TABLE["tense"] == DecoderMode.STANDARD
        assert PAPER_MODE_TABLE["relaxed"] == DecoderMode.DF_OFF

    def test_unknown_state_falls_back(self):
        policy = VideoModePolicy()
        assert policy.mode_for("daydreaming") == DecoderMode.STANDARD

    def test_reprogram(self):
        policy = VideoModePolicy()
        policy.reprogram("relaxed", DecoderMode.COMBINED)
        assert policy.mode_for("relaxed") == DecoderMode.COMBINED
        # The shared default table must not be mutated.
        assert PAPER_MODE_TABLE["relaxed"] == DecoderMode.DF_OFF

    def test_schedule_spans(self):
        policy = VideoModePolicy()
        spans = policy.schedule(
            [(0.0, "distracted"), (60.0, "tense")], total_s=100.0
        )
        assert spans == [
            (0.0, 60.0, "distracted", DecoderMode.COMBINED),
            (60.0, 100.0, "tense", DecoderMode.STANDARD),
        ]

    def test_schedule_validation(self):
        policy = VideoModePolicy()
        with pytest.raises(ValueError):
            policy.schedule([], total_s=10.0)
        with pytest.raises(ValueError):
            policy.schedule([(5.0, "tense")], total_s=5.0)


class TestMeasureModePower:
    @pytest.fixture(scope="class")
    def table(self, clip_12, stream_12):
        return measure_mode_power(stream_12, clip_12)

    def test_standard_is_unity(self, table):
        assert table.power(DecoderMode.STANDARD) == pytest.approx(1.0)

    def test_df_share_is_calibrated(self, table):
        assert table.df_share_standard == pytest.approx(0.314, abs=1e-6)

    def test_df_off_saving_matches_share(self, table):
        assert table.saving(DecoderMode.DF_OFF) == pytest.approx(0.314, abs=0.005)

    def test_mode_power_ordering(self, table):
        assert (
            table.power(DecoderMode.COMBINED)
            <= table.power(DecoderMode.DF_OFF)
            < table.power(DecoderMode.STANDARD)
        )
        assert table.power(DecoderMode.DELETION) <= table.power(DecoderMode.STANDARD)

    def test_quality_ordering(self, table):
        std = table.results[DecoderMode.STANDARD]
        combined = table.results[DecoderMode.COMBINED]
        assert combined.psnr_db <= std.psnr_db
        assert combined.blockiness >= std.blockiness


class TestSimulatePlayback:
    def _fake_table(self):
        powers = {
            DecoderMode.STANDARD: 1.0,
            DecoderMode.DF_OFF: 0.686,
            DecoderMode.DELETION: 0.894,
            DecoderMode.COMBINED: 0.631,
        }
        results = {
            mode: ModeResult(mode, p, 30.0, 0.0, 0, 0) for mode, p in powers.items()
        }
        return ModePowerTable(results=results, df_share_standard=0.314)

    def test_paper_timeline_reproduces_23_percent(self):
        """With the paper's exact mode savings, the paper's exact timeline
        must yield its 23.1% energy saving — a pure-arithmetic check."""
        table = self._fake_table()
        segments = [
            (0.0, "distracted"),
            (14.0 * 60, "concentrated"),
            (20.0 * 60, "tense"),
            (29.0 * 60, "relaxed"),
        ]
        report = simulate_playback(segments, 40.0 * 60, table)
        assert report.energy_saving == pytest.approx(0.231, abs=0.003)

    def test_segments_cover_session(self):
        table = self._fake_table()
        report = simulate_playback([(0.0, "tense")], 600.0, table)
        assert report.duration_s == pytest.approx(600.0)
        assert report.segments[0].mode == DecoderMode.STANDARD

    def test_all_standard_saves_nothing(self):
        table = self._fake_table()
        report = simulate_playback([(0.0, "tense")], 100.0, table)
        assert report.energy_saving == pytest.approx(0.0)

    def test_custom_policy(self):
        table = self._fake_table()
        policy = VideoModePolicy(table={"anything": DecoderMode.COMBINED})
        report = simulate_playback([(0.0, "anything")], 100.0, table, policy)
        assert report.energy_saving == pytest.approx(1.0 - 0.631)
