"""Continuous profiling: sampler, heap tracking, exemplars, leak paging."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import trace as trace_mod
from repro.obs.alerts import (
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    STATE_FIRING,
    AlertEvent,
    AlertManager,
)
from repro.obs.export import chrome_trace_json, prometheus_text
from repro.obs.prof import (
    HeapProfiler,
    ProfileRecorder,
    StackSampler,
    heap_growth_objective,
    heap_growth_rule,
    parse_collapsed,
    profile_counter_events,
    render_flame_summary,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLObjective, SnapshotHistory, evaluate_slo
from repro.obs.timing import Timer
from repro.obs.trace import (
    Tracer,
    current_stage_of,
    disable_stage_tracking,
    enable_stage_tracking,
    pop_thread_stage,
    push_thread_stage,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class BusyWorker:
    """A thread spinning inside an optional stage until released."""

    def __init__(self, stage: str | None = None, name: str = "busy"):
        self.stage = stage
        self.stop = threading.Event()
        self.ready = threading.Event()
        self.thread = threading.Thread(target=self._spin, name=name)

    def _spin(self) -> None:
        if self.stage is not None:
            push_thread_stage(self.stage)
        self.ready.set()
        while not self.stop.is_set():
            sum(i * i for i in range(100))
        if self.stage is not None:
            pop_thread_stage()

    def __enter__(self) -> "BusyWorker":
        self.thread.start()
        assert self.ready.wait(5.0)
        return self

    def __exit__(self, *exc) -> None:
        self.stop.set()
        self.thread.join(5.0)
        assert not self.thread.is_alive()


class TestStageTable:
    def test_push_pop_and_lookup(self):
        enable_stage_tracking()
        try:
            ident = threading.get_ident()
            assert current_stage_of(ident) is None
            push_thread_stage("outer")
            push_thread_stage("inner")
            assert current_stage_of(ident) == "inner"
            pop_thread_stage()
            assert current_stage_of(ident) == "outer"
            pop_thread_stage()
            assert current_stage_of(ident) is None
        finally:
            disable_stage_tracking()

    def test_refcounted_disable_clears_table(self):
        enable_stage_tracking()
        enable_stage_tracking()
        push_thread_stage("x")
        disable_stage_tracking()
        # Still attached once: the table survives.
        assert current_stage_of(threading.get_ident()) == "x"
        disable_stage_tracking()
        assert current_stage_of(threading.get_ident()) is None

    def test_scope_entered_before_attach_never_pops(self, registry):
        """A profiler attaching mid-scope must not unbalance the stack."""
        tracer = Tracer(registry=registry)
        scope = tracer.span("serve.window", root=True)
        with scope:
            # Attach while the scope is already inside: its _tracked
            # flag was latched False at entry, so exit won't pop.
            enable_stage_tracking()
            push_thread_stage("mine")
        assert current_stage_of(threading.get_ident()) == "mine"
        pop_thread_stage()
        disable_stage_tracking()

    def test_span_scopes_push_while_tracking(self, registry):
        tracer = Tracer(registry=registry)
        enable_stage_tracking()
        try:
            ident = threading.get_ident()
            with tracer.span("serve.window", root=True):
                assert current_stage_of(ident) == "serve.window"
                with tracer.span("serve.dsp"):
                    assert current_stage_of(ident) == "serve.dsp"
                assert current_stage_of(ident) == "serve.window"
            assert current_stage_of(ident) is None
        finally:
            disable_stage_tracking()


class TestStackSampler:
    def test_deterministic_attribution(self, registry):
        sampler = StackSampler(registry=registry)
        enable_stage_tracking()
        try:
            with BusyWorker(stage="serve.dsp"):
                for _ in range(25):
                    sampler.sample_once()
        finally:
            disable_stage_tracking()
        stats = sampler.stats()
        assert stats["samples"] >= 25
        assert stats["stage_samples"].get("serve.dsp", 0) >= 25
        assert stats["attributed_fraction"] > 0.9

    def test_sample_once_excludes_caller(self, registry):
        sampler = StackSampler(registry=registry)
        sampler.sample_once()
        # Only this thread exists in most runs; its own stack must not
        # appear, so every recorded sample belongs to *other* threads.
        for stack in parse_collapsed(sampler.collapsed()):
            assert "test_sample_once_excludes_caller" not in ";".join(stack)

    def test_collapsed_round_trips(self, registry):
        sampler = StackSampler(registry=registry)
        with BusyWorker():
            for _ in range(10):
                sampler.sample_once()
        text = sampler.collapsed()
        parsed = parse_collapsed(text)
        assert sum(parsed.values()) == sampler.stats()["samples"]
        for stack in parsed:
            assert len(stack) >= 2  # thread label + at least one frame

    def test_parse_collapsed_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_collapsed("no trailing count\n")

    def test_start_stop_idempotent(self, registry):
        sampler = StackSampler(interval_s=0.001, registry=registry)
        sampler.start()
        sampler.start()  # second start is a no-op, not a second thread
        assert sampler.running
        threads = [t for t in threading.enumerate()
                   if t.name == "repro-prof-sampler"]
        assert len(threads) == 1
        sampler.stop()
        sampler.stop()
        assert not sampler.running
        # Stage tracking refcount returned to zero.
        assert not trace_mod._STAGE_TRACKING

    def test_survives_target_thread_death(self, registry):
        sampler = StackSampler(interval_s=0.001, registry=registry)
        sampler.start()
        try:
            for _ in range(10):
                t = threading.Thread(
                    target=lambda: sum(i for i in range(1000)))
                t.start()
                t.join()
            time.sleep(0.03)
        finally:
            sampler.stop(timeout_s=5.0)
        assert not sampler.running  # joined cleanly, no deadlock

    def test_no_deadlock_against_registry_snapshot(self, registry):
        """Scraping the registry while sampling must never deadlock."""
        sampler = StackSampler(interval_s=0.001, registry=registry,
                               publish_every=1)
        stop = threading.Event()
        errors: list[Exception] = []

        def scrape() -> None:
            try:
                while not stop.is_set():
                    registry.snapshot()
                    prometheus_text(registry)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        scraper = threading.Thread(target=scrape, name="scraper")
        sampler.start()
        scraper.start()
        time.sleep(0.1)
        stop.set()
        scraper.join(5.0)
        sampler.stop(timeout_s=5.0)
        assert not scraper.is_alive()
        assert not sampler.running
        assert errors == []

    def test_publish_sets_gauges(self, registry):
        sampler = StackSampler(registry=registry)
        enable_stage_tracking()
        try:
            with BusyWorker(stage="serve.predict"):
                for _ in range(5):
                    sampler.sample_once()
        finally:
            disable_stage_tracking()
        sampler.publish()
        snap = registry.snapshot()
        assert snap["gauges"]["prof.samples"] >= 5
        assert snap["gauges"]["prof.samples.attributed"] >= 5
        assert snap["gauges"][
            'prof.stage_samples{stage="serve.predict"}'] >= 5

    def test_reset_clears_aggregate(self, registry):
        sampler = StackSampler(registry=registry)
        with BusyWorker():
            sampler.sample_once()
        assert sampler.stats()["samples"] >= 1
        sampler.reset()
        assert sampler.stats()["samples"] == 0
        assert sampler.collapsed() == ""

    def test_rejects_bad_config(self, registry):
        with pytest.raises(ValueError):
            StackSampler(interval_s=0.0, registry=registry)
        with pytest.raises(ValueError):
            StackSampler(max_depth=0, registry=registry)

    def test_flame_summary_renders(self, registry):
        sampler = StackSampler(registry=registry)
        enable_stage_tracking()
        try:
            with BusyWorker(stage="serve.dsp"):
                for _ in range(5):
                    sampler.sample_once()
        finally:
            disable_stage_tracking()
        text = render_flame_summary(sampler)
        assert "== profile ==" in text
        assert "serve.dsp" in text


class TestHeapProfiler:
    def test_tracks_growth_and_stage_bytes(self, registry):
        heap = HeapProfiler(registry=registry)
        heap.start()
        try:
            tracer = Tracer(registry=registry)
            with tracer.span("serve.window", root=True):
                blob = [bytearray(4096) for _ in range(200)]
            heap.sample()
            report = heap.report()
            assert report["tracing"] is True
            assert report["stage_net_bytes"]  # the span reported a delta
            assert "serve.window" in report["stage_net_bytes"]
            snap = registry.snapshot()
            assert snap["gauges"]["prof.heap.current_bytes"] > 0
            assert "prof.heap.growth_bytes_per_s" in snap["gauges"]
            del blob
        finally:
            heap.stop()

    def test_top_sites_name_this_file(self, registry):
        heap = HeapProfiler(registry=registry)
        heap.start()
        try:
            blob = [bytearray(8192) for _ in range(300)]
            sites = heap.top(5)
            assert sites, "expected at least one allocation site"
            assert any("test_prof.py" in s["site"] for s in sites)
            assert all(s["size_bytes"] >= 0 for s in sites)
            del blob
        finally:
            heap.stop()

    def test_start_stop_idempotent_and_restores_hook(self, registry):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        heap = HeapProfiler(registry=registry)
        heap.start()
        heap.start()
        assert trace_mod._HEAP_HOOK is heap
        heap.stop()
        heap.stop()
        assert trace_mod._HEAP_HOOK is not heap
        assert tracemalloc.is_tracing() == was_tracing

    def test_growth_rate_sign(self, registry):
        heap = HeapProfiler(registry=registry)
        heap.start()
        try:
            heap.sample(perf_s=0.0)
            hold = [bytearray(65536) for _ in range(64)]
            first = heap.sample(perf_s=1.0)
            assert first["growth_bytes_per_s"] > 0
            del hold
            second = heap.sample(perf_s=2.0)
            assert second["growth_bytes_per_s"] < 0
        finally:
            heap.stop()


class TestGaugeSLO:
    def test_evaluate_below_and_above_ceiling(self, registry):
        objective = SLObjective(
            name="g", kind="gauge", metric="prof.heap.growth_bytes_per_s",
            threshold=100.0,
        )
        registry.set_gauge("prof.heap.growth_bytes_per_s", 50.0)
        verdict = evaluate_slo(registry, objective)
        assert verdict.ok
        assert verdict.bad_fraction == pytest.approx(0.5)
        registry.set_gauge("prof.heap.growth_bytes_per_s", 250.0)
        verdict = evaluate_slo(registry, objective)
        assert not verdict.ok
        assert verdict.bad_fraction == pytest.approx(2.5)

    def test_gauge_needs_positive_ceiling(self):
        with pytest.raises(ValueError):
            SLObjective(name="g", kind="gauge", metric="m", threshold=0.0)

    def test_windowed_verdict_reads_later_snapshot(self, registry):
        objective = heap_growth_objective(ceiling_bytes_per_s=100.0)
        history = SnapshotHistory((objective,), max_horizon_s=10.0,
                                  min_interval_s=0.0)
        registry.set_gauge(objective.metric, 10.0)
        history.sample(registry, now=0.0)
        registry.set_gauge(objective.metric, 300.0)
        history.sample(registry, now=1.0)
        verdict = history.evaluate(objective, horizon_s=1.0)
        assert verdict.samples > 0
        assert verdict.burn_rate == pytest.approx(3.0)

    def test_heap_growth_rule_pages_and_uses_gauge_kind(self, registry):
        rule = heap_growth_rule(ceiling_bytes_per_s=1000.0,
                                fast_window_s=1.0, slow_window_s=3.0)
        assert rule.objective.kind == "gauge"
        assert rule.severity == SEVERITY_PAGE
        manager = AlertManager(rules=(rule,), min_interval_s=0.0)
        # Healthy baseline, then a sustained leak across both windows.
        registry.set_gauge(rule.objective.metric, 0.0)
        for t in (0.0, 0.5, 1.0):
            assert manager.observe(registry, now=t) == []
        registry.set_gauge(rule.objective.metric, 5000.0)
        events: list[AlertEvent] = []
        t = 1.5
        while t < 12.0:
            events.extend(manager.observe(registry, now=t))
            t += 0.5
        firing = [e for e in events if e.state == STATE_FIRING]
        assert firing, f"leak never paged: {events}"
        assert firing[0].severity == SEVERITY_PAGE
        assert firing[0].burn_fast >= 1.0


class TestProfileRecorder:
    @staticmethod
    def _page_event(at: float = 1.0) -> AlertEvent:
        return AlertEvent(rule="heap-growth-page", severity=SEVERITY_PAGE,
                          state=STATE_FIRING, at=at, burn_fast=2.0,
                          burn_slow=2.0, threshold=1.0)

    def _sampler(self, registry) -> StackSampler:
        sampler = StackSampler(registry=registry)
        with BusyWorker():
            sampler.sample_once()
        return sampler

    def test_writes_into_latest_bundle(self, registry, tmp_path):
        bundle = tmp_path / "incident-01-x-t0001.00"
        bundle.mkdir()

        class FakeRecorder:
            bundles = [str(bundle)]

        sink = ProfileRecorder(self._sampler(registry),
                               recorder=FakeRecorder())
        sink.emit(self._page_event())
        collapsed = bundle / "profile.collapsed"
        assert collapsed.exists()
        assert parse_collapsed(collapsed.read_text())
        payload = json.loads((bundle / "profile.json").read_text())
        assert payload["rule"] == "heap-growth-page"
        assert payload["profile"]["samples"] >= 1

    def test_falls_back_to_own_dir(self, registry, tmp_path):
        sink = ProfileRecorder(self._sampler(registry),
                               profile_dir=str(tmp_path / "prof"))
        sink.emit(self._page_event())
        assert len(sink.profiles) == 1
        assert parse_collapsed(
            open(sink.profiles[0], encoding="utf-8").read())

    def test_ignores_non_page_and_caps_captures(self, registry, tmp_path):
        sink = ProfileRecorder(self._sampler(registry),
                               profile_dir=str(tmp_path / "prof"),
                               max_profiles=1)
        ticket = AlertEvent(rule="r", severity=SEVERITY_TICKET,
                            state=STATE_FIRING, at=1.0, burn_fast=2.0,
                            burn_slow=2.0, threshold=1.0)
        sink.emit(ticket)
        assert sink.profiles == []
        sink.emit(self._page_event(1.0))
        sink.emit(self._page_event(2.0))
        assert len(sink.profiles) == 1

    def test_includes_heap_report_when_attached(self, registry, tmp_path):
        heap = HeapProfiler(registry=registry)
        heap.start()
        try:
            sink = ProfileRecorder(self._sampler(registry), heap=heap,
                                   profile_dir=str(tmp_path / "prof"))
            sink.emit(self._page_event())
        finally:
            heap.stop()
        payload = json.loads(
            (tmp_path / "prof").glob("*/profile.json").__next__()
            .read_text())
        assert "heap" in payload


class TestExemplars:
    def test_histogram_keeps_worst_traced_sample(self, registry):
        registry.observe("lat", 0.1, trace_id="t-small")
        registry.observe("lat", 0.9, trace_id="t-big")
        registry.observe("lat", 0.5, trace_id="t-mid")
        registry.observe("lat", 2.0)  # untraced: never an exemplar
        assert registry.exemplars() == {"lat": ("t-big", 0.9)}

    def test_prometheus_emits_openmetrics_exemplar(self, registry):
        registry.observe("lat", 0.25, trace_id="abc123")
        text = prometheus_text(registry)
        tail = [line for line in text.splitlines()
                if 'quantile="0.99"' in line]
        assert len(tail) == 1
        assert tail[0].endswith('# {trace_id="abc123"} 0.25')
        # Only the tail quantile carries it.
        assert text.count("trace_id=") == 1

    def test_no_exemplar_without_traces(self, registry):
        registry.observe("lat", 0.25)
        assert "trace_id=" not in prometheus_text(registry)

    def test_timer_captures_ambient_trace_id(self, registry):
        tracer = Tracer(registry=registry, seed=5)
        with tracer.span("serve.window", root=True) as _:
            span = tracer.current()
            with Timer("lat", registry=registry):
                pass
        exemplars = registry.exemplars()
        assert exemplars["lat"][0] == span.trace_id

    def test_timer_outside_trace_records_no_exemplar(self, registry):
        with Timer("lat", registry=registry):
            pass
        assert registry.exemplars() == {}


class TestCounterEvents:
    def test_counter_events_merge_into_chrome_trace(self, registry):
        sampler = StackSampler(registry=registry)
        with BusyWorker():
            for _ in range(3):
                sampler.sample_once()
        events = profile_counter_events(sampler)
        assert events and all(e["ph"] == "C" for e in events)
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        doc = json.loads(chrome_trace_json([], counter_events=events))
        counters = [e for e in doc["traceEvents"]
                    if e["name"] == "prof.samples"]
        assert len(counters) == 3
        last = counters[-1]["args"]
        assert last["attributed"] + last["unattributed"] == 3

    def test_heap_track(self, registry):
        heap = HeapProfiler(registry=registry)
        heap.start()
        try:
            heap.sample(perf_s=1.0)
            heap.sample(perf_s=2.0)
        finally:
            heap.stop()
        events = profile_counter_events(heap=heap)
        assert [e["name"] for e in events] == ["prof.heap", "prof.heap"]
        assert all("traced_mib" in e["args"] for e in events)
