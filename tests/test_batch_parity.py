"""Batch-vs-single inference parity.

The micro-batching serving runtime rests on one assumption: submitting a
row alone or inside a batch yields the same label.  These tests pin that
for the float model, the int8 quantized model, and the pipeline's
waveform entry points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.affect.pipeline import AffectClassifierPipeline
from repro.datasets.speech import synthesize_utterance
from repro.nn.quantization import quantize_model


@pytest.fixture(scope="module")
def trained(small_corpus):
    pipeline = AffectClassifierPipeline("mlp", seed=0)
    pipeline.train(small_corpus, epochs=4)
    return pipeline


@pytest.fixture(scope="module")
def feature_batch(small_corpus, trained):
    x, _, _, _ = small_corpus.split(test_fraction=0.3, seed=0)
    clf = trained.classifier
    return clf.normalize(x[:16])


class TestModelBatchParity:
    def test_predict_single_vs_batch(self, trained, feature_batch):
        model = trained.classifier.model
        batched = model.predict(feature_batch)
        singles = np.array(
            [int(model.predict(row[None, ...])[0]) for row in feature_batch]
        )
        assert np.array_equal(batched, singles)

    def test_predict_proba_single_vs_batch(self, trained, feature_batch):
        model = trained.classifier.model
        batched = model.predict_proba(feature_batch)
        for i, row in enumerate(feature_batch):
            single = model.predict_proba(row[None, ...])[0]
            np.testing.assert_allclose(batched[i], single, rtol=1e-6,
                                       atol=1e-9)

    def test_predict_crosses_internal_batch_boundary(self, trained,
                                                     feature_batch):
        # Submitting with a tiny internal batch_size must not change labels.
        model = trained.classifier.model
        assert np.array_equal(
            model.predict(feature_batch, batch_size=3),
            model.predict(feature_batch),
        )

    def test_quantized_single_vs_batch(self, trained, feature_batch):
        quantized = quantize_model(trained.classifier.model)
        batched = quantized.predict(feature_batch)
        singles = np.array(
            [int(quantized.predict(row[None, ...])[0]) for row in feature_batch]
        )
        assert np.array_equal(batched, singles)
        probas = quantized.predict_proba(feature_batch)
        for i, row in enumerate(feature_batch):
            np.testing.assert_allclose(
                probas[i], quantized.predict_proba(row[None, ...])[0],
                rtol=1e-6, atol=1e-9,
            )


class TestPipelineBatchParity:
    def test_prepare_waveforms_matches_single(self, trained):
        labels = trained.classifier.label_names
        waves = [
            synthesize_utterance(labels[i % len(labels)], actor=i % 4,
                                 sentence=i % 3, take=i)
            for i in range(5)
        ]
        # Mixed lengths exercise the batch front end's length grouping.
        waves.append(waves[0][: len(waves[0]) // 2])
        batched = trained.prepare_waveforms(waves)
        assert batched.shape[0] == len(waves)
        for i, wave in enumerate(waves):
            np.testing.assert_array_equal(
                batched[i], trained.prepare_waveform(wave)
            )

    def test_prepare_waveforms_empty(self, trained):
        clf = trained.classifier
        prepared = trained.prepare_waveforms([])
        assert prepared.shape == (0, clf.n_frames, clf.mean.shape[-1])

    def test_quantized_predict_batch_matches_float_labels(self, trained,
                                                          feature_batch):
        # The serve default: int8 predict_batch must agree with the
        # float model on in-distribution rows (Fig. 3(d)'s claim).
        quantized = quantize_model(trained.classifier.model)
        float_labels = trained.classifier.model.predict(feature_batch)
        int8_labels = quantized.predict_batch(feature_batch)
        agreement = float(np.mean(float_labels == int8_labels))
        assert agreement >= 0.9

    def test_classify_waveforms_matches_loop(self, trained):
        labels = trained.classifier.label_names
        waves = [
            synthesize_utterance(labels[i % len(labels)], actor=i % 4,
                                 sentence=i % 3, take=i)
            for i in range(6)
        ]
        batched = trained.classify_waveforms(waves)
        assert batched.shape == (6,)
        for wave, label in zip(waves, batched):
            assert trained.classify_waveform(wave) == label

    def test_classify_waveforms_empty(self, trained):
        assert trained.classify_waveforms([]).shape == (0,)

    def test_classify_waveform_still_returns_str(self, trained):
        labels = trained.classifier.label_names
        wave = synthesize_utterance(labels[0])
        result = trained.classify_waveform(wave)
        assert isinstance(result, str)
        assert result in labels
