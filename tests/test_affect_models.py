"""Tests for the model zoo, classifier pipeline, and SC inference."""

import numpy as np
import pytest

from repro.affect.model_zoo import (
    PAPER_BUDGETS,
    build_cnn,
    build_lstm,
    build_mlp,
    build_model,
    default_training,
    fast_config,
    paper_config,
)
from repro.affect.pipeline import AffectClassifierPipeline
from repro.affect.sc_inference import (
    SCEngagementClassifier,
    sc_window_features,
    segment_engagement,
)
from repro.datasets.uulmmac import generate_sc_session


class TestModelZoo:
    @pytest.mark.parametrize(
        "name,builder", [("mlp", build_mlp), ("cnn", build_cnn), ("lstm", build_lstm)]
    )
    def test_paper_parameter_budgets(self, name, builder):
        model = builder((56, 18), 8, config=paper_config())
        budget = PAPER_BUDGETS[name]
        assert abs(model.n_params - budget) / budget < 0.05, model.n_params

    def test_budget_ordering_matches_paper(self):
        """Fig. 3(c): CNN largest, then MLP, then LSTM."""
        sizes = {
            name: build_model(name, (56, 18), 8, config=paper_config()).n_params
            for name in ("mlp", "cnn", "lstm")
        }
        assert sizes["cnn"] > sizes["mlp"] > sizes["lstm"]

    def test_build_model_dispatch(self):
        model = build_model("LSTM", (10, 6), 4, config=fast_config())
        assert model.n_params > 0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("transformer", (10, 6), 4)

    def test_fast_models_are_small(self):
        for name in ("mlp", "cnn", "lstm"):
            model = build_model(name, (56, 18), 8, config=fast_config())
            assert model.n_params < 120_000

    def test_default_training_table(self):
        epochs, lr = default_training("lstm")
        assert epochs > 0 and lr > 0
        with pytest.raises(KeyError):
            default_training("svm")


class TestPipeline:
    @pytest.fixture(scope="class")
    def trained(self, small_corpus):
        pipeline = AffectClassifierPipeline("mlp", seed=0)
        metrics = pipeline.train(small_corpus, epochs=15)
        return pipeline, metrics

    def test_training_metrics(self, trained):
        _, metrics = trained
        assert 0.0 <= metrics["test_accuracy"] <= 1.0
        assert metrics["train_accuracy"] > 0.5

    def test_classify_waveform_returns_label(self, trained, small_corpus):
        pipeline, _ = trained
        from repro.datasets.speech import synthesize_utterance

        label = pipeline.classify_waveform(synthesize_utterance("angry"))
        assert label in small_corpus.label_names

    def test_confusion_matrix_shape(self, trained, small_corpus):
        pipeline, _ = trained
        cm = pipeline.confusion(small_corpus.x, small_corpus.y)
        n = small_corpus.n_classes
        assert cm.shape == (n, n)
        assert cm.sum() == small_corpus.x.shape[0]

    def test_quantized_evaluation_close_to_float(self, trained, small_corpus):
        pipeline, _ = trained
        float_acc = pipeline.evaluate(small_corpus.x, small_corpus.y)
        qacc = pipeline.evaluate_quantized(small_corpus.x, small_corpus.y)
        assert abs(float_acc - qacc) <= 0.05

    def test_untrained_raises(self):
        pipeline = AffectClassifierPipeline("mlp")
        with pytest.raises(RuntimeError):
            pipeline.classify_features(np.zeros((1, 10, 18)))

    def test_short_signal_padding_stays_in_distribution(self, trained):
        # Regression: classify_waveform used to zero-pad the feature matrix
        # *before* normalization, so padded frames became (0 - mean) / std
        # spikes the model never saw during training (the corpora truncate
        # to the minimum frame count and never pad).
        from repro.datasets.speech import synthesize_utterance
        from repro.dsp.features import extract_feature_matrix

        pipeline, _ = trained
        clf = pipeline.classifier
        hop = clf.feature_config.hop_length
        short = synthesize_utterance("happy")[: hop * (clf.n_frames // 2)]
        n_real = extract_feature_matrix(short, clf.feature_config).shape[0]
        assert 0 < n_real < clf.n_frames  # genuinely needs padding
        x = pipeline.prepare_waveform(short)
        assert x.shape == (clf.n_frames, clf.feature_config.n_features)
        # Padded frames sit exactly at the training mean (zero after
        # normalization) instead of out-of-distribution spikes.
        assert np.all(x[n_real:] == 0.0)
        assert pipeline.classify_waveform(short) in clf.label_names


class TestSCInference:
    @pytest.fixture(scope="class")
    def session(self):
        return generate_sc_session(seed=0)

    def test_window_features_shape(self, session):
        centers, feats = sc_window_features(session.sc, session.sample_rate)
        assert feats.shape == (centers.shape[0], 3)
        assert np.all(feats[:, 0] > 0)

    def test_fit_predict_accuracy(self, session):
        clf = SCEngagementClassifier().fit(session)
        assert clf.accuracy(session) > 0.6

    def test_predict_before_fit_raises(self, session):
        with pytest.raises(RuntimeError):
            SCEngagementClassifier().predict(session)

    def test_segment_engagement_recovers_timeline(self, session):
        segments = segment_engagement(session)
        labels = [label for _, label in segments]
        assert labels == ["distracted", "concentrated", "tense", "relaxed"]
        starts_min = [start / 60.0 for start, _ in segments]
        # Paper boundaries at 0 / 14 / 20 / 29 minutes (within 2 min).
        for got, want in zip(starts_min, [0.0, 14.0, 20.0, 29.0]):
            assert abs(got - want) < 2.0

    def test_generalizes_across_sessions(self, session):
        clf = SCEngagementClassifier().fit(session)
        other = generate_sc_session(seed=9)
        assert clf.accuracy(other) > 0.5

    def test_missing_state_raises(self):
        from repro.datasets.uulmmac import Segment

        short = generate_sc_session((Segment("tense", 0.0, 3.0),), seed=0)
        with pytest.raises(ValueError):
            SCEngagementClassifier().fit(short)
