"""Tests for the emotional speech synthesizer."""

import numpy as np
import pytest

from repro.datasets.speech import (
    EMOTION_PROFILES,
    SpeechSynthesizer,
    blend_profiles,
    synthesize_utterance,
)
from repro.dsp.features import pitch_track, rms_energy


class TestSynthesizer:
    def test_deterministic(self):
        a = synthesize_utterance("happy", actor=1, sentence=2, take=3)
        b = synthesize_utterance("happy", actor=1, sentence=2, take=3)
        assert np.array_equal(a, b)

    def test_takes_differ(self):
        a = synthesize_utterance("happy", take=0)
        b = synthesize_utterance("happy", take=1)
        assert not np.array_equal(a, b)

    def test_duration(self):
        sig = synthesize_utterance("sad", duration=0.5)
        assert sig.shape[0] == 8000

    def test_unknown_emotion_raises(self):
        with pytest.raises(KeyError):
            synthesize_utterance("melancholy-ish")

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SpeechSynthesizer(duration=0.0)

    def test_all_profiles_render_finite(self):
        synth = SpeechSynthesizer(duration=0.3)
        for emotion in EMOTION_PROFILES:
            sig = synth.synthesize(emotion)
            assert np.isfinite(sig).all()
            assert sig.std() > 0


class TestProsodyCorrelates:
    """The acoustic correlates the classifiers rely on must be present."""

    def _mean_pitch(self, emotion, takes=6):
        synth = SpeechSynthesizer(duration=0.9, seed=0)
        values = []
        for take in range(takes):
            sig = synth.synthesize(emotion, actor=0, take=take, noise_level=0.01)
            pitch = pitch_track(sig, 16000.0, 1024, 512)
            voiced = pitch[pitch > 0]
            if voiced.size:
                values.append(np.median(voiced))
        return float(np.mean(values))

    def test_fearful_higher_pitch_than_sad(self):
        assert self._mean_pitch("fearful") > self._mean_pitch("sad") * 1.3

    def test_angry_louder_than_sad(self):
        synth = SpeechSynthesizer(duration=0.9, seed=0)
        angry = np.mean([
            rms_energy(synth.synthesize("angry", take=t, noise_level=0.0), 512, 256).mean()
            for t in range(6)
        ])
        sad = np.mean([
            rms_energy(synth.synthesize("sad", take=t, noise_level=0.0), 512, 256).mean()
            for t in range(6)
        ])
        assert angry > sad * 1.5

    def test_actor_gender_alternates_pitch(self):
        synth = SpeechSynthesizer(seed=0)
        male = synth.actor_f0_scale(0)
        female = synth.actor_f0_scale(1)
        assert female > male


class TestBlendProfiles:
    def test_zero_blend_is_identity(self):
        profile = EMOTION_PROFILES["angry"]
        assert blend_profiles(profile, EMOTION_PROFILES["neutral"], 0.0) is profile

    def test_full_blend_reaches_target(self):
        blended = blend_profiles(
            EMOTION_PROFILES["angry"], EMOTION_PROFILES["neutral"], 1.0
        )
        assert blended == EMOTION_PROFILES["neutral"]

    def test_half_blend_interpolates(self):
        a = EMOTION_PROFILES["angry"]
        n = EMOTION_PROFILES["neutral"]
        half = blend_profiles(a, n, 0.5)
        assert half.f0_base == pytest.approx((a.f0_base + n.f0_base) / 2)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            blend_profiles(EMOTION_PROFILES["sad"], EMOTION_PROFILES["neutral"], 1.5)

    def test_blend_reduces_separation(self):
        """Blending must shrink the prosodic distance between emotions."""
        a = EMOTION_PROFILES["angry"]
        s = EMOTION_PROFILES["sad"]
        n = EMOTION_PROFILES["neutral"]
        raw_gap = abs(a.f0_base - s.f0_base)
        blended_gap = abs(
            blend_profiles(a, n, 0.5).f0_base - blend_profiles(s, n, 0.5).f0_base
        )
        assert blended_gap < raw_gap
