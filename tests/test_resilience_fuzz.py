"""Fuzz: a concealment decoder must survive arbitrary slice corruption.

Bit-flips and truncations are applied at offsets past the SPS (parameter
sets travel out-of-band in real deployments, so the decoder always has
valid dimensions).  Whatever lands on slice data, the decoder with
``error_concealment=True`` must never raise and must yield exactly one
display frame per input frame — corrupted slices come out as last-frame
repeats, not as exceptions or dropped frames.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.decoder import Decoder, DecoderConfig
from repro.video.encoder import Encoder, EncoderConfig
from repro.video.frames import synthetic_video
from repro.video.nal import START_CODE

N_FRAMES = 5


def _encoded_stream(seed: int) -> tuple[bytes, int]:
    """Encode a small clip; returns (stream, protected-prefix length)."""
    frames = synthetic_video(N_FRAMES, height=32, width=48, seed=seed)
    stream = Encoder(EncoderConfig(gop_size=3)).encode(frames)
    second_unit = stream.find(START_CODE, len(START_CODE))
    assert second_unit > 0
    return stream, second_unit


_STREAM, _PREFIX = _encoded_stream(seed=0)


class TestConcealmentFuzz:
    @given(
        flips=st.lists(
            st.tuples(
                st.integers(0, len(_STREAM) - _PREFIX - 1),
                st.integers(0, 7),
            ),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bitflips_never_raise_and_preserve_frame_count(self, flips):
        corrupted = bytearray(_STREAM)
        for rel_offset, bit in flips:
            corrupted[_PREFIX + rel_offset] ^= 1 << bit
        decoded = Decoder(DecoderConfig(error_concealment=True)).decode(
            bytes(corrupted)
        )
        assert len(decoded.frames) == N_FRAMES
        for frame in decoded.frames:
            assert frame.y.shape == (32, 48)
            assert frame.y.dtype == np.uint8

    @given(cut=st.integers(0, len(_STREAM) - _PREFIX))
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_raises_and_preserves_frame_count(self, cut):
        corrupted = _STREAM[: len(_STREAM) - cut]
        decoded = Decoder(DecoderConfig(error_concealment=True)).decode(
            corrupted
        )
        assert len(decoded.frames) == N_FRAMES
        for frame in decoded.frames:
            assert frame.y.shape == (32, 48)

    @given(
        cut=st.integers(1, len(_STREAM) - _PREFIX),
        flips=st.lists(
            st.tuples(
                st.integers(0, len(_STREAM) - _PREFIX - 1),
                st.integers(0, 7),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_combined_corruption_never_raises(self, cut, flips):
        corrupted = bytearray(_STREAM)
        for rel_offset, bit in flips:
            corrupted[_PREFIX + rel_offset] ^= 1 << bit
        corrupted = corrupted[: len(corrupted) - cut]
        decoded = Decoder(DecoderConfig(error_concealment=True)).decode(
            bytes(corrupted)
        )
        assert len(decoded.frames) == N_FRAMES

    def test_pristine_stream_has_no_concealment(self):
        decoded = Decoder(DecoderConfig(error_concealment=True)).decode(
            _STREAM
        )
        assert len(decoded.frames) == N_FRAMES
        assert decoded.counters.units_corrupt == 0
        assert decoded.concealed_indices == []
