"""Tests for corner paths: trace export, emulator exhaustion, SC params,
trailing-B decode order, and entropy registry ids."""

import numpy as np
import pytest

from repro.android.app import AppSpec
from repro.android.emulator import AndroidEmulator, EmulatorConfig
from repro.android.monkey import LaunchEvent
from repro.android.tracer import Tracer
from repro.datasets.uulmmac import Segment, generate_sc_session
from repro.video.encoder import gop_decode_order
from repro.video.frames import FrameType


class TestChromeTraceExport:
    def test_span_pairing(self):
        tracer = Tracer()
        tracer.record(0.0, "cold_start", "a", detail=100.0)
        tracer.record(5.0, "kill", "a")
        tracer.record(2.0, "cold_start", "b", detail=50.0)
        trace = tracer.to_chrome_trace()
        begins = [e for e in trace if e["ph"] == "B"]
        ends = [e for e in trace if e["ph"] == "E"]
        assert len(begins) == len(ends) == 2
        # "b" was never killed: its span closes at the last event time.
        b_end = next(e for e in ends if e["tid"] == "b")
        assert b_end["ts"] == pytest.approx(5.0 * 1e6)

    def test_instant_events_carry_bytes(self):
        tracer = Tracer()
        tracer.record(1.0, "cold_start", "x", detail=42.0)
        trace = tracer.to_chrome_trace()
        instant = next(e for e in trace if e["ph"] == "i")
        assert instant["args"] == {"bytes": 42.0}

    def test_empty_tracer(self):
        assert Tracer().to_chrome_trace() == []

    def test_timestamps_sorted(self):
        tracer = Tracer()
        tracer.record(3.0, "warm_start", "a")
        tracer.record(1.0, "cold_start", "b", detail=1.0)
        trace = tracer.to_chrome_trace()
        times = [e["ts"] for e in trace]
        assert times == sorted(times)


class TestEmulatorExhaustion:
    def test_memory_error_when_everything_protected(self):
        apps = [
            AppSpec("big_1", "Video", 900.0, 100.0),
            AppSpec("big_2", "Video", 900.0, 100.0),
            AppSpec("big_3", "Video", 900.0, 100.0),
        ]
        config = EmulatorConfig(
            ram_mb=2048, system_reserved_mb=1024.0, n_apps=3, process_limit=20
        )
        emulator = AndroidEmulator(
            config=config,
            catalog=apps,
            protected_apps={"big_1", "big_2", "big_3"},
        )
        events = [
            LaunchEvent(0.0, "big_1", "calm"),
            LaunchEvent(1.0, "big_2", "calm"),
        ]
        with pytest.raises(MemoryError):
            emulator.run(events)

    def test_unprotected_app_killed_for_ram(self):
        apps = [
            AppSpec("big_1", "Video", 900.0, 100.0),
            AppSpec("big_2", "Video", 900.0, 100.0),
        ]
        config = EmulatorConfig(
            ram_mb=2048, system_reserved_mb=1024.0, n_apps=2, process_limit=20
        )
        emulator = AndroidEmulator(config=config, catalog=apps)
        result = emulator.run(
            [LaunchEvent(0.0, "big_1", "calm"), LaunchEvent(1.0, "big_2", "calm")]
        )
        assert result.kills == 1
        assert result.processes["big_1"].kills == 1


class TestCustomScParams:
    def test_state_params_override(self):
        timeline = (Segment("focus", 0.0, 3.0), Segment("rest", 3.0, 6.0))
        session = generate_sc_session(
            timeline,
            seed=0,
            state_params={"focus": (5.0, 8.0, 0.5), "rest": (1.0, 0.2, 0.05)},
        )
        focus = session.sc[session.segment_slice(timeline[0])]
        rest = session.sc[session.segment_slice(timeline[1])]
        assert focus.mean() > rest.mean() + 1.0


class TestTrailingBDecodeOrder:
    def test_trailing_b_goes_last(self):
        types = [FrameType.I, FrameType.P, FrameType.B]
        order = gop_decode_order(types)
        assert order == [0, 1, 2]

    def test_interleaved_with_trailing(self):
        types = [FrameType.I, FrameType.B, FrameType.P, FrameType.B]
        order = gop_decode_order(types)
        assert order == [0, 2, 1, 3]
        assert sorted(order) == list(range(4))
