"""End-to-end integration tests across subsystems.

These tie the full paper pipeline together: classifier -> emotion stream
-> system manager -> (decoder modes, app kills), and the complete encode ->
select -> decode -> power -> playback chain.
"""

import json

import pytest

from repro.affect import (
    AffectClassifierPipeline,
    SCEngagementClassifier,
    segment_engagement,
)
from repro.android.app import build_app_catalog
from repro.android.emulator import AndroidEmulator
from repro.core import (
    AffectDrivenSystemManager,
    AffectTable,
    DecoderMode,
    EmotionalAppPolicy,
    measure_mode_power,
    simulate_playback,
)
from repro.core.appstudy import run_case_study
from repro.core.casestudy import paper_clip_stream
from repro.core.modes import decoder_config_for
from repro.datasets import emovo_like, generate_sc_session
from repro.datasets.phone_usage import SUBJECTS
from repro.datasets.speech import synthesize_utterance
from repro.video.decoder import Decoder


@pytest.fixture(scope="module")
def clip_and_stream():
    return paper_clip_stream(seed=1)


@pytest.fixture(scope="module")
def power_table(clip_and_stream):
    frames, stream = clip_and_stream
    return measure_mode_power(stream, frames)


class TestVideoChain:
    def test_full_chain_energy_saving(self, power_table):
        """SC session -> engagement -> policy -> measured-power energy."""
        session = generate_sc_session(seed=0)
        segments = segment_engagement(session)
        report = simulate_playback(segments, float(session.time_s[-1]), power_table)
        assert 0.10 <= report.energy_saving <= 0.40
        assert [seg.state for seg in report.segments] == [
            "distracted", "concentrated", "tense", "relaxed",
        ]

    def test_all_modes_decode_the_same_stream(self, clip_and_stream):
        frames, stream = clip_and_stream
        for mode in DecoderMode:
            out = Decoder(decoder_config_for(mode)).decode(stream)
            assert len(out.frames) == len(frames)

    def test_power_monotone_in_deleted_data(self, clip_and_stream, power_table):
        """More deleted bytes can only reduce measured power."""
        frames, stream = clip_and_stream
        deletion = Decoder(decoder_config_for(DecoderMode.DELETION)).decode(stream)
        standard = Decoder(decoder_config_for(DecoderMode.STANDARD)).decode(stream)
        assert deletion.counters.bits_parsed < standard.counters.bits_parsed
        assert power_table.power(DecoderMode.DELETION) < 1.0


class TestClassifierToManager:
    @pytest.fixture(scope="class")
    def pipeline(self):
        corpus = emovo_like(n_per_class=12, seed=0)
        pipeline = AffectClassifierPipeline("mlp", seed=0)
        pipeline.train(corpus, epochs=20)
        return pipeline

    def test_waveform_to_decoder_mode(self, pipeline):
        from repro.affect import EmotionStream

        manager = AffectDrivenSystemManager(stream=EmotionStream(window=3, min_votes=2))
        # Alias the classifier's labels onto engagement states for the demo
        # policy: sad -> relaxed-style DF_OFF.
        manager.video_policy.reprogram("sad", DecoderMode.DF_OFF)
        for take in range(10):
            wave = synthesize_utterance("sad", actor=1, sentence=take, take=take)
            manager.observe(pipeline.classify_waveform(wave), float(take))
        # Raw labels may flicker, but ten windows of the same ground-truth
        # emotion must commit *some* state through the majority vote.
        assert manager.current_emotion is not None
        assert manager.decoder_mode() in DecoderMode

    def test_waveform_to_app_kill(self, pipeline):
        catalog = build_app_catalog(44, seed=0)
        table = AffectTable.from_subjects(catalog, list(SUBJECTS))
        policy = EmotionalAppPolicy(table, fallback_emotion="calm")
        manager = AffectDrivenSystemManager(app_policy=policy)
        for t in range(3):
            manager.observe("excited", float(t))
        assert policy.current_emotion == "excited"


class TestScToPlayback:
    def test_engagement_classifier_transfers(self):
        train = generate_sc_session(seed=0)
        test = generate_sc_session(seed=42)
        classifier = SCEngagementClassifier().fit(train)
        segments = segment_engagement(test, classifier)
        assert segments[0][1] == "distracted"
        labels = [label for _, label in segments]
        assert "tense" in labels and "relaxed" in labels


class TestAppManagementChain:
    def test_case_study_trace_export(self, tmp_path):
        result = run_case_study(seed=0)
        path = tmp_path / "trace.json"
        result.emotion.tracer.save_chrome_trace(path)
        trace = json.loads(path.read_text())
        assert trace
        phases = {event["ph"] for event in trace}
        assert {"i", "B", "E"} <= phases
        begins = sum(1 for e in trace if e["ph"] == "B")
        ends = sum(1 for e in trace if e["ph"] == "E")
        assert begins == ends

    def test_emulator_conserves_launch_counts(self):
        catalog = build_app_catalog(44, seed=0)
        from repro.core.appstudy import paper_workload

        events = paper_workload(catalog, seed=2)
        emulator = AndroidEmulator(catalog=catalog)
        result = emulator.run(events)
        launches = (
            result.cold_starts + result.warm_starts + result.foreground_touches
        )
        assert launches == len(events)
        assert result.tracer.count("cold_start") == result.cold_starts
        assert result.tracer.count("warm_start") == result.warm_starts
        assert result.tracer.cold_start_bytes() == result.total_loaded_bytes
