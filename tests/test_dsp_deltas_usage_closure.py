"""Tests for delta features and the usage-statistics closure property."""

import collections

import numpy as np
import pytest

from repro.android.monkey import MonkeyScript, WorkloadPhase
from repro.datasets.phone_usage import get_subject, usage_distribution
from repro.dsp.features import FeatureConfig, delta_features, extract_feature_matrix


def _tone(freq, n=8000, sr=16000.0):
    return np.sin(2 * np.pi * freq * np.arange(n) / sr)


class TestDeltaFeatures:
    def test_shape_preserved(self):
        x = np.random.default_rng(0).standard_normal((10, 5))
        d = delta_features(x)
        assert d.shape == x.shape
        assert np.all(d[0] == 0)

    def test_constant_signal_zero_deltas(self):
        x = np.ones((8, 3))
        assert np.all(delta_features(x) == 0)

    def test_values(self):
        x = np.array([[1.0], [3.0], [6.0]])
        d = delta_features(x)
        assert d[:, 0].tolist() == [0.0, 2.0, 3.0]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            delta_features(np.ones(5))

    def test_feature_matrix_with_deltas(self):
        config = FeatureConfig(deltas=True)
        feats = extract_feature_matrix(_tone(220), config)
        assert feats.shape[1] == config.n_features
        assert config.n_features == 13 + 5 + 13

    def test_deltas_capture_dynamics(self):
        """A frequency sweep has larger MFCC deltas than a steady tone."""
        sr = 16000.0
        t = np.arange(16000) / sr
        sweep = np.sin(2 * np.pi * (200 + 300 * t) * t)
        steady = _tone(200, n=16000)
        config = FeatureConfig(deltas=True)
        sweep_deltas = extract_feature_matrix(sweep, config)[:, 18:]
        steady_deltas = extract_feature_matrix(steady, config)[:, 18:]
        assert np.abs(sweep_deltas).mean() > np.abs(steady_deltas).mean()


class TestUsageClosure:
    """The monkey workload must reproduce the distribution it samples from
    (the paper's monkey script is built 'to match the probability of the
    subjects' daily statistics')."""

    def test_long_workload_matches_subject_distribution(self, catalog_44):
        subject = get_subject(3)
        phases = [WorkloadPhase(subject, 3600.0 * 4, "excited")]
        events = MonkeyScript(catalog_44, mean_dwell_s=10.0, seed=0).generate(phases)
        category_of = {app.name: app.category for app in catalog_44}
        counts = collections.Counter(category_of[e.app] for e in events)
        total = sum(counts.values())
        target = usage_distribution(subject)
        for category in ("Messaging", "Internet_Browser", "Calling"):
            observed = counts.get(category, 0) / total
            assert observed == pytest.approx(target[category], abs=0.04)

    def test_favourite_app_dominates_its_category(self, catalog_44):
        subject = get_subject(1)
        phases = [WorkloadPhase(subject, 3600.0 * 2, "trusting")]
        events = MonkeyScript(
            catalog_44, mean_dwell_s=10.0, favourite_weight=2.5, seed=1
        ).generate(phases)
        messaging = [e.app for e in events if e.app.startswith("Messaging")]
        counts = collections.Counter(messaging)
        assert counts["Messaging_1"] > counts.get("Messaging_2", 0)
