"""Tests for the biosignal substrate: synthesis, detection, HRV, fusion."""

import numpy as np
import pytest

from repro.affect.fusion import CardiacAffectClassifier, late_fusion
from repro.datasets.biosignals import (
    biosignal_corpus,
    cardiac_profile_for,
    synthesize_biosignals,
)
from repro.dsp.bio import (
    cardiac_feature_vector,
    detect_r_peaks,
    hrv_features,
)


class TestCardiacProfiles:
    def test_arousal_raises_heart_rate(self):
        assert cardiac_profile_for("angry").hr_bpm > cardiac_profile_for("calm").hr_bpm
        assert cardiac_profile_for("excited").hr_bpm > cardiac_profile_for("sleepy").hr_bpm

    def test_arousal_lowers_hrv(self):
        assert (
            cardiac_profile_for("angry").hrv_rmssd_ms
            < cardiac_profile_for("calm").hrv_rmssd_ms
        )

    def test_stress_speeds_respiration(self):
        assert (
            cardiac_profile_for("stressed").resp_hz
            > cardiac_profile_for("relaxed").resp_hz
        )

    def test_unknown_emotion_raises(self):
        with pytest.raises(ValueError):
            cardiac_profile_for("hangry")


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_biosignals("happy", duration_s=10, seed=3)
        b = synthesize_biosignals("happy", duration_s=10, seed=3)
        assert np.array_equal(a.ecg, b.ecg)
        assert np.array_equal(a.ppg, b.ppg)

    def test_shapes(self):
        rec = synthesize_biosignals("sad", duration_s=12, sample_rate=64)
        assert rec.ecg.shape == rec.ppg.shape == (12 * 64,)
        assert rec.duration_s == pytest.approx(12.0)

    def test_beat_count_matches_heart_rate(self):
        rec = synthesize_biosignals("neutral", duration_s=60, seed=1)
        expected = rec.profile.hr_bpm
        realized = rec.beat_times.size
        assert abs(realized - expected) <= 6

    def test_ground_truth_rmssd_calibrated(self):
        rec = synthesize_biosignals("calm", duration_s=120, seed=2)
        rr_ms = np.diff(rec.beat_times) * 1000.0
        rmssd = float(np.sqrt(np.mean(np.diff(rr_ms) ** 2)))
        assert rmssd == pytest.approx(rec.profile.hrv_rmssd_ms, rel=0.35)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            synthesize_biosignals("happy", duration_s=0)

    def test_corpus_shapes(self):
        records, labels = biosignal_corpus(("calm", "angry"), n_per_class=3,
                                           duration_s=8)
        assert len(records) == 6
        assert np.bincount(labels).tolist() == [3, 3]


class TestPeakDetection:
    def test_recovers_true_beats(self):
        rec = synthesize_biosignals("neutral", duration_s=30, seed=0)
        peaks = detect_r_peaks(rec.ecg, rec.sample_rate)
        assert abs(peaks.size - rec.beat_times.size) <= 2
        # Each detected peak lies near a true beat.
        for p in peaks:
            assert np.min(np.abs(rec.beat_times - p)) < 0.08

    def test_ppg_pulses_detected(self):
        rec = synthesize_biosignals("happy", duration_s=30, seed=0)
        peaks = detect_r_peaks(rec.ppg, rec.sample_rate, min_distance_s=0.4,
                               threshold_quantile=0.8)
        assert abs(peaks.size - rec.beat_times.size) <= 3

    def test_flat_signal_no_peaks(self):
        assert detect_r_peaks(np.zeros(1000), 128.0).size == 0

    def test_refractory_merging(self):
        sr = 100.0
        signal = np.zeros(500)
        signal[100] = 1.0
        signal[105] = 0.8  # within the refractory window of the first
        signal[300] = 1.0
        peaks = detect_r_peaks(signal, sr, min_distance_s=0.3)
        assert peaks.size == 2

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            detect_r_peaks(np.zeros((3, 3)), 100.0)


class TestHrvFeatures:
    def test_constant_rr_zero_variability(self):
        peaks = np.arange(0.0, 30.0, 0.8)
        feats = hrv_features(peaks)
        assert feats.mean_hr_bpm == pytest.approx(75.0)
        assert feats.sdnn_ms == pytest.approx(0.0, abs=1e-6)
        assert feats.rmssd_ms == pytest.approx(0.0, abs=1e-6)
        assert feats.pnn50 == 0.0

    def test_requires_three_beats(self):
        with pytest.raises(ValueError):
            hrv_features(np.array([0.0, 1.0]))

    def test_arousal_separates_features(self):
        angry = synthesize_biosignals("angry", duration_s=60, seed=0)
        calm = synthesize_biosignals("calm", duration_s=60, seed=0)
        fa = hrv_features(detect_r_peaks(angry.ecg, angry.sample_rate))
        fc = hrv_features(detect_r_peaks(calm.ecg, calm.sample_rate))
        assert fa.mean_hr_bpm > fc.mean_hr_bpm + 15
        assert fa.rmssd_ms < fc.rmssd_ms

    def test_feature_vector_dimensions(self):
        rec = synthesize_biosignals("happy", duration_s=20, seed=0)
        vec = cardiac_feature_vector(rec.ecg, rec.ppg, rec.sample_rate)
        assert vec.shape == (10,)
        assert np.isfinite(vec).all()


class TestFusion:
    @pytest.fixture(scope="class")
    def trained(self):
        emotions = ("calm", "angry")
        records, labels = biosignal_corpus(emotions, n_per_class=10,
                                           duration_s=15)
        clf = CardiacAffectClassifier(seed=0)
        clf.fit(records, labels, emotions, epochs=40)
        return clf, emotions

    def test_classifier_learns_arousal(self, trained):
        clf, emotions = trained
        test_records, test_labels = biosignal_corpus(
            emotions, n_per_class=5, duration_s=15, seed=11
        )
        assert clf.evaluate(test_records, test_labels) >= 0.8

    def test_unfit_raises(self):
        records, _ = biosignal_corpus(("calm",), n_per_class=1, duration_s=8)
        with pytest.raises(RuntimeError):
            CardiacAffectClassifier().predict(records)

    def test_late_fusion_rows_sum_to_one(self):
        a = np.array([[0.7, 0.3], [0.2, 0.8]])
        b = np.array([[0.6, 0.4], [0.4, 0.6]])
        fused = late_fusion([a, b])
        assert np.allclose(fused.sum(axis=1), 1.0)
        assert np.allclose(fused, (a + b) / 2)

    def test_late_fusion_weights(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        fused = late_fusion([a, b], weights=[3.0, 1.0])
        assert fused[0, 0] == pytest.approx(0.75)

    def test_late_fusion_validation(self):
        a = np.ones((2, 2)) / 2
        with pytest.raises(ValueError):
            late_fusion([])
        with pytest.raises(ValueError):
            late_fusion([a, np.ones((3, 2)) / 2])
        with pytest.raises(ValueError):
            late_fusion([a], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            late_fusion([a], weights=[-1.0])

    def test_fusion_not_worse_than_weak_modality(self, trained):
        clf, emotions = trained
        test_records, test_labels = biosignal_corpus(
            emotions, n_per_class=6, duration_s=15, seed=12
        )
        cardiac = clf.predict_proba(test_records)
        noise_modality = np.full_like(cardiac, 1.0 / cardiac.shape[1])
        fused = late_fusion([cardiac, noise_modality], weights=[2.0, 1.0])
        fused_acc = float(np.mean(fused.argmax(axis=1) == test_labels))
        cardiac_acc = float(np.mean(cardiac.argmax(axis=1) == test_labels))
        assert fused_acc >= cardiac_acc - 0.1
