"""Property-based tests for the bitstream and NAL layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.bitstream import BitReader, BitWriter
from repro.video.nal import (
    NalType,
    NalUnit,
    escape_payload,
    pack_nal_units,
    split_nal_units,
    unescape_payload,
)


class TestBitstream:
    def test_single_bits(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1, 0):
            w.write_bit(bit)
        r = BitReader(w.to_bytes())
        assert [r.read_bit() for _ in range(5)] == [1, 0, 1, 1, 0]

    def test_write_bits_value_too_large(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(8, 3)

    def test_len_counts_bits(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert len(w) == 3
        w.write_bits(0xFF, 8)
        assert len(w) == 11

    def test_read_past_end_raises(self):
        r = BitReader(b"")
        with pytest.raises(EOFError):
            r.read_bit()

    def test_ue_known_codewords(self):
        # Classic exp-Golomb: 0 -> "1", 1 -> "010", 2 -> "011".
        w = BitWriter()
        w.write_ue(0)
        assert len(w) == 1
        w2 = BitWriter()
        w2.write_ue(1)
        assert len(w2) == 3

    def test_ue_negative_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_ue(-1)

    @given(st.lists(st.integers(0, 100_000), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_property_ue_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            w.write_ue(v)
        r = BitReader(w.to_bytes())
        assert [r.read_ue() for _ in values] == values

    @given(st.lists(st.integers(-50_000, 50_000), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_property_se_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            w.write_se(v)
        r = BitReader(w.to_bytes())
        assert [r.read_se() for _ in values] == values

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**16 - 1), st.integers(1, 16)), max_size=30
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_fixed_width_roundtrip(self, pairs):
        pairs = [(v & ((1 << n) - 1), n) for v, n in pairs]
        w = BitWriter()
        for v, n in pairs:
            w.write_bits(v, n)
        r = BitReader(w.to_bytes())
        assert [(r.read_bits(n), n) for _, n in pairs] == pairs

    def test_bits_remaining(self):
        r = BitReader(b"\xff")
        assert r.bits_remaining == 8
        r.read_bits(3)
        assert r.bits_remaining == 5
        assert r.bits_consumed == 3


class TestEmulationPrevention:
    @given(st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_property_escape_roundtrip(self, payload):
        assert unescape_payload(escape_payload(payload)) == payload

    @given(st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_property_no_start_code_in_escaped(self, payload):
        assert b"\x00\x00\x01" not in escape_payload(payload)

    def test_known_sequences(self):
        assert escape_payload(b"\x00\x00\x01") == b"\x00\x00\x03\x01"
        assert escape_payload(b"\x00\x00\x04") == b"\x00\x00\x04"


class TestNalFraming:
    def _units(self):
        return [
            NalUnit(NalType.SPS, 0, b"\x00\x00\x01\x02\x03"),
            NalUnit(NalType.SLICE_I, 0, bytes(range(256))),
            NalUnit(NalType.SLICE_P, 1, b""),
            NalUnit(NalType.SLICE_B, 2, b"\x00" * 40),
        ]

    def test_roundtrip(self):
        units = self._units()
        assert split_nal_units(pack_nal_units(units)) == units

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(NalType)),
                st.integers(0, 255),
                st.binary(max_size=200),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, raw):
        units = [NalUnit(t, i, p) for t, i, p in raw]
        assert split_nal_units(pack_nal_units(units)) == units

    def test_size_accounting(self):
        unit = NalUnit(NalType.SLICE_B, 3, b"abcd")
        assert unit.size_bytes == 3 + 2 + 4

    def test_reference_classification(self):
        assert NalUnit(NalType.SLICE_I, 0, b"").is_reference
        assert NalUnit(NalType.SLICE_P, 0, b"").is_reference
        assert not NalUnit(NalType.SLICE_B, 0, b"").is_reference

    def test_frame_index_range(self):
        with pytest.raises(ValueError):
            pack_nal_units([NalUnit(NalType.SLICE_I, 300, b"")])
