"""Tests for model selection utilities and policy personalization."""

import numpy as np
import pytest

from repro.affect.model_selection import (
    DeploymentScore,
    cross_validate,
    deployment_ranking,
    evaluate_speaker_independent,
    speaker_independent_split,
)
from repro.core.modes import DecoderMode
from repro.core.personalization import (
    BATTERY_COMPLAINT,
    MODE_LADDER,
    PolicyPersonalizer,
    QUALITY_COMPLAINT,
)
from repro.core.video_policy import VideoModePolicy


class TestCrossValidation:
    def test_fold_accuracies(self, small_corpus):
        accuracies = cross_validate("mlp", small_corpus, k=3, epochs=10)
        assert len(accuracies) == 3
        for accuracy in accuracies:
            assert 0.0 <= accuracy <= 1.0
        # Better than chance on average.
        assert np.mean(accuracies) > 1.0 / small_corpus.n_classes

    def test_invalid_k(self, small_corpus):
        with pytest.raises(ValueError):
            cross_validate("mlp", small_corpus, k=1)


class TestSpeakerIndependentSplit:
    def test_actor_sets_disjoint(self, small_corpus):
        x_train, y_train, x_test, y_test = speaker_independent_split(
            small_corpus, seed=0
        )
        assert x_train.shape[0] + x_test.shape[0] == small_corpus.x.shape[0]
        # Rebuild actor sets from masks.
        actors = small_corpus.actors
        test_count = x_test.shape[0]
        test_mask_actors = set()
        train_mask_actors = set()
        # Recompute the same split to get the masks.
        rng = np.random.default_rng(0)
        shuffled = np.unique(actors).copy()
        rng.shuffle(shuffled)
        n_test = max(1, int(round(0.3 * shuffled.size)))
        test_actors = set(shuffled[:n_test].tolist())
        mask = np.isin(actors, list(test_actors))
        assert mask.sum() == test_count
        assert not (set(actors[mask].tolist()) & set(actors[~mask].tolist()))

    def test_invalid_fraction(self, small_corpus):
        with pytest.raises(ValueError):
            speaker_independent_split(small_corpus, test_fraction=0.0)

    def test_evaluation_runs(self, small_corpus):
        accuracy = evaluate_speaker_independent("mlp", small_corpus, epochs=8)
        assert 0.0 <= accuracy <= 1.0


class TestDeploymentRanking:
    def test_accuracy_wins_within_budget(self):
        ranking = deployment_ranking(
            {"a": 0.8, "b": 0.7}, {"a": 500.0, "b": 100.0}, size_budget_kb=1024
        )
        assert ranking[0].architecture == "a"

    def test_oversize_penalized(self):
        ranking = deployment_ranking(
            {"big": 0.82, "small": 0.78},
            {"big": 4096.0, "small": 400.0},
            size_budget_kb=1024,
        )
        # big pays (4 - 1) * 0.25 = 0.75 penalty and loses.
        assert ranking[0].architecture == "small"
        big = next(r for r in ranking if r.architecture == "big")
        assert big.score == pytest.approx(0.82 - 0.75)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            deployment_ranking({}, {}, size_budget_kb=0)


class TestPolicyPersonalizer:
    def test_battery_complaints_move_toward_saving(self):
        policy = VideoModePolicy()
        tuner = PolicyPersonalizer(policy, threshold=2)
        assert policy.mode_for("tense") == DecoderMode.STANDARD
        tuner.feedback("tense", BATTERY_COMPLAINT)
        assert policy.mode_for("tense") == DecoderMode.STANDARD  # below threshold
        tuner.feedback("tense", BATTERY_COMPLAINT)
        assert policy.mode_for("tense") == DecoderMode.DELETION

    def test_quality_complaints_move_toward_quality(self):
        policy = VideoModePolicy()
        tuner = PolicyPersonalizer(policy, threshold=1)
        assert policy.mode_for("distracted") == DecoderMode.COMBINED
        tuner.feedback("distracted", QUALITY_COMPLAINT)
        assert policy.mode_for("distracted") == DecoderMode.DF_OFF

    def test_opposite_feedback_cancels(self):
        policy = VideoModePolicy()
        tuner = PolicyPersonalizer(policy, threshold=2)
        tuner.feedback("tense", BATTERY_COMPLAINT)
        tuner.feedback("tense", QUALITY_COMPLAINT)
        assert tuner.pressure("tense") == 0
        assert policy.mode_for("tense") == DecoderMode.STANDARD

    def test_ladder_clamped_at_ends(self):
        policy = VideoModePolicy()
        tuner = PolicyPersonalizer(policy, threshold=1)
        for _ in range(6):
            tuner.feedback("tense", QUALITY_COMPLAINT)
        assert policy.mode_for("tense") == DecoderMode.STANDARD  # already best
        for _ in range(6):
            tuner.feedback("distracted", BATTERY_COMPLAINT)
        assert policy.mode_for("distracted") == DecoderMode.COMBINED

    def test_history_records_changes(self):
        policy = VideoModePolicy()
        tuner = PolicyPersonalizer(policy, threshold=1)
        tuner.feedback("relaxed", BATTERY_COMPLAINT)
        assert tuner.history == [("relaxed", BATTERY_COMPLAINT, DecoderMode.COMBINED)]

    def test_ladder_is_ordered_by_power(self):
        """The ladder must agree with measured mode powers (fake table)."""
        powers = {
            DecoderMode.STANDARD: 1.0,
            DecoderMode.DELETION: 0.894,
            DecoderMode.DF_OFF: 0.686,
            DecoderMode.COMBINED: 0.631,
        }
        ladder_powers = [powers[mode] for mode in MODE_LADDER]
        assert ladder_powers == sorted(ladder_powers, reverse=True)

    def test_invalid_inputs(self):
        policy = VideoModePolicy()
        with pytest.raises(ValueError):
            PolicyPersonalizer(policy, threshold=0)
        tuner = PolicyPersonalizer(policy)
        with pytest.raises(ValueError):
            tuner.feedback("tense", "meh")
