"""Tests for the affect table, emotional app policy, and controller."""

import pytest

from repro.android.process import ProcessRecord
from repro.core.affect_table import AffectTable, AppRankGenerator
from repro.core.app_policy import EmotionalAppPolicy
from repro.core.controller import AffectDrivenSystemManager
from repro.core.modes import DecoderMode
from repro.datasets.phone_usage import SUBJECTS


class TestAffectTable:
    @pytest.fixture(scope="class")
    def table(self, catalog_44):
        return AffectTable.from_subjects(catalog_44, list(SUBJECTS))

    def test_one_entry_per_subject(self, table):
        assert set(table.emotions()) == {s.emotion_proxy for s in SUBJECTS}

    def test_probabilities_normalized(self, table, catalog_44):
        for emotion in table.emotions():
            total = sum(
                table.probability(emotion, app.name) for app in catalog_44
            )
            assert total == pytest.approx(1.0)

    def test_favourite_app_preferred(self, table):
        assert table.probability("excited", "Messaging_1") > table.probability(
            "excited", "Messaging_2"
        )

    def test_excited_prefers_calling(self, table):
        assert table.probability("excited", "Calling_1") > table.probability(
            "calm", "Calling_1"
        )

    def test_unknown_emotion_falls_back_to_mean(self, table):
        p = table.probability("furious", "Messaging_1")
        known = [table.probability(e, "Messaging_1") for e in table.emotions()]
        assert min(known) <= p <= max(known)

    def test_record_usage_shifts_mass(self, table, catalog_44):
        import copy

        local = copy.deepcopy(table)
        before = local.probability("calm", "Games_1")
        for _ in range(30):
            local.record_usage("calm", "Games_1")
        after = local.probability("calm", "Games_1")
        assert after > before
        total = sum(local.probability("calm", app.name) for app in catalog_44)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_record_usage_validates_weight(self, table):
        with pytest.raises(ValueError):
            table.record_usage("calm", "Games_1", weight=0.0)


class TestRankGenerator:
    def test_rank_order(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        ranker = AppRankGenerator(table)
        names = [app.name for app in catalog_44]
        ranked = ranker.rank("excited", names)
        probs = [table.probability("excited", n) for n in ranked]
        assert probs == sorted(probs, reverse=True)
        least = ranker.least_likely("excited", names)
        assert table.probability("excited", least) == pytest.approx(probs[-1])

    def test_least_likely_empty_raises(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        with pytest.raises(ValueError):
            AppRankGenerator(table).least_likely("excited", [])


class TestEmotionalAppPolicy:
    def _background(self, catalog, names):
        procs = []
        for i, name in enumerate(names):
            app = next(a for a in catalog if a.name == name)
            proc = ProcessRecord(app=app)
            proc.start(float(i))
            proc.to_background(float(i) + 0.5)
            procs.append(proc)
        return procs

    def test_kills_least_likely_for_emotion(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        policy = EmotionalAppPolicy(table)
        background = self._background(
            catalog_44, ["Messaging_1", "Calling_1", "Games_1"]
        )
        victim = policy.choose_victim(background, emotion="excited")
        assert victim.app.name == "Games_1"

    def test_emotion_changes_victim(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        policy = EmotionalAppPolicy(table)
        background = self._background(catalog_44, ["Calling_1", "Gallery_1"])
        excited_victim = policy.choose_victim(background, emotion="excited")
        assert excited_victim.app.name == "Gallery_1"

    def test_set_emotion_used_as_default(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        policy = EmotionalAppPolicy(table)
        policy.set_emotion("excited")
        background = self._background(catalog_44, ["Calling_1", "Games_1"])
        assert policy.choose_victim(background).app.name == "Games_1"

    def test_learning_updates_table(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        policy = EmotionalAppPolicy(table, learn=True)
        before = table.probability("calm", "Camera_1")
        for _ in range(20):
            policy.observe_launch("calm", "Camera_1")
        assert table.probability("calm", "Camera_1") > before

    def test_empty_background_raises(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        with pytest.raises(ValueError):
            EmotionalAppPolicy(table).choose_victim([])


class TestController:
    def test_emotion_flows_to_policies(self, catalog_44):
        table = AffectTable.from_subjects(catalog_44, list(SUBJECTS))
        app_policy = EmotionalAppPolicy(table)
        manager = AffectDrivenSystemManager(app_policy=app_policy)
        for t in range(3):
            manager.observe("relaxed", float(t))
        assert manager.current_emotion == "relaxed"
        assert app_policy.current_emotion == "relaxed"
        assert manager.decoder_mode() == DecoderMode.DF_OFF

    def test_fallback_mode_before_any_commit(self):
        manager = AffectDrivenSystemManager()
        assert manager.decoder_mode() == DecoderMode.STANDARD

    def test_mode_changes_timeline(self):
        manager = AffectDrivenSystemManager()
        labels = ["distracted"] * 3 + ["tense"] * 4 + ["relaxed"] * 4
        for t, label in enumerate(labels):
            manager.observe(label, float(t))
        changes = [mode for _, mode in manager.mode_changes()]
        assert changes == [
            DecoderMode.COMBINED, DecoderMode.STANDARD, DecoderMode.DF_OFF,
        ]

    def test_flicker_does_not_change_mode(self):
        manager = AffectDrivenSystemManager()
        for t in range(5):
            manager.observe("tense", float(t))
        manager.observe("relaxed", 5.0)  # one flicker among tense labels
        manager.observe("tense", 6.0)
        assert manager.decoder_mode() == DecoderMode.STANDARD
        assert len(manager.mode_changes()) == 1
