"""Gradient-checked tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePooling1D,
    MaxPool1D,
    ReLU,
    Tanh,
)


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn()
        x[idx] = orig - eps
        lo = fn()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x, rtol=1e-4, atol=1e-6):
    """Verify input and parameter gradients against central differences."""
    rng = np.random.default_rng(0)
    layer.build(x.shape[1:], rng)
    out = layer.forward(x, training=False)
    upstream = np.random.default_rng(1).standard_normal(out.shape)

    def loss():
        return float(np.sum(layer.forward(x, training=False) * upstream))

    layer.forward(x, training=False)
    dx = layer.backward(upstream)
    dx_num = numeric_grad(loss, x)
    np.testing.assert_allclose(dx, dx_num, rtol=rtol, atol=atol)
    for name, param in layer.params.items():
        dp_num = numeric_grad(loss, param)
        layer.forward(x, training=False)
        layer.backward(upstream)
        np.testing.assert_allclose(
            layer.grads[name], dp_num, rtol=rtol, atol=atol, err_msg=name
        )


class TestDense:
    def test_gradients_linear(self):
        x = np.random.default_rng(2).standard_normal((3, 5))
        check_layer_gradients(Dense(4), x)

    def test_gradients_relu(self):
        x = np.random.default_rng(3).standard_normal((3, 5)) + 0.1
        check_layer_gradients(Dense(4, activation="relu"), x)

    def test_gradients_tanh(self):
        x = np.random.default_rng(4).standard_normal((3, 5))
        check_layer_gradients(Dense(4, activation="tanh"), x)

    def test_output_shape(self):
        layer = Dense(7)
        assert layer.output_shape((5,)) == (7,)

    def test_param_count(self):
        layer = Dense(4)
        layer.build((5,), np.random.default_rng(0))
        assert layer.n_params == 5 * 4 + 4

    def test_rejects_bad_activation(self):
        with pytest.raises(ValueError):
            Dense(4, activation="gelu")

    def test_rejects_nonflat_input(self):
        with pytest.raises(ValueError):
            Dense(4).build((5, 3), np.random.default_rng(0))


class TestConv1D:
    def test_gradients_same_padding(self):
        x = np.random.default_rng(5).standard_normal((2, 6, 3))
        check_layer_gradients(Conv1D(4, 3, padding="same"), x)

    def test_gradients_valid_padding(self):
        x = np.random.default_rng(6).standard_normal((2, 6, 3))
        check_layer_gradients(Conv1D(4, 3, padding="valid"), x)

    def test_gradients_relu(self):
        x = np.random.default_rng(7).standard_normal((2, 6, 3))
        check_layer_gradients(Conv1D(4, 3, activation="relu"), x)

    def test_even_kernel(self):
        x = np.random.default_rng(8).standard_normal((2, 6, 2))
        check_layer_gradients(Conv1D(3, 4, padding="same"), x)

    def test_output_shapes(self):
        assert Conv1D(8, 3, padding="same").output_shape((10, 4)) == (10, 8)
        assert Conv1D(8, 3, padding="valid").output_shape((10, 4)) == (8, 8)

    def test_identity_kernel(self):
        layer = Conv1D(1, 1)
        layer.build((5, 1), np.random.default_rng(0))
        layer.params["W"][...] = 1.0
        layer.params["b"][...] = 0.0
        x = np.arange(5.0).reshape(1, 5, 1)
        assert np.allclose(layer.forward(x), x)


class TestPooling:
    def test_maxpool_gradients(self):
        x = np.random.default_rng(9).standard_normal((2, 6, 3))
        check_layer_gradients(MaxPool1D(2), x)

    def test_maxpool_values(self):
        x = np.array([[[1.0], [5.0], [2.0], [3.0]]])
        out = MaxPool1D(2).forward(x)
        assert out[0, :, 0].tolist() == [5.0, 3.0]

    def test_maxpool_truncates_odd_tail(self):
        x = np.random.default_rng(10).standard_normal((1, 5, 2))
        layer = MaxPool1D(2)
        out = layer.forward(x)
        assert out.shape == (1, 2, 2)
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert np.all(dx[:, 4, :] == 0)

    def test_maxpool_too_short_raises(self):
        with pytest.raises(ValueError):
            MaxPool1D(4).forward(np.zeros((1, 3, 1)))

    def test_gap_gradients(self):
        x = np.random.default_rng(11).standard_normal((2, 5, 3))
        check_layer_gradients(GlobalAveragePooling1D(), x)

    def test_gap_value(self):
        x = np.arange(6.0).reshape(1, 3, 2)
        out = GlobalAveragePooling1D().forward(x)
        assert np.allclose(out, [[2.0, 3.0]])


class TestActivationsAndShape:
    def test_relu_gradients(self):
        x = np.random.default_rng(12).standard_normal((3, 4)) + 0.05
        check_layer_gradients(ReLU(), x)

    def test_tanh_gradients(self):
        x = np.random.default_rng(13).standard_normal((3, 4))
        check_layer_gradients(Tanh(), x)

    def test_flatten_roundtrip(self):
        x = np.random.default_rng(14).standard_normal((2, 3, 4))
        layer = Flatten()
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4)) == (12,)


class TestDropout:
    def test_identity_at_inference(self):
        x = np.ones((4, 10))
        layer = Dropout(0.5)
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_scales_at_training(self):
        x = np.ones((200, 50))
        layer = Dropout(0.4, seed=0)
        out = layer.forward(x, training=True)
        # Inverted dropout keeps the expectation.
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        kept = out > 0
        assert kept.mean() == pytest.approx(0.6, abs=0.05)

    def test_backward_masks_gradient(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
