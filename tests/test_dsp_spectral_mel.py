"""Tests for repro.dsp.spectral and repro.dsp.mel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.mel import dct_ii, hz_to_mel, mel_filterbank, mel_to_hz, mfcc
from repro.dsp.spectral import magnitude_spectrogram, power_spectrogram, stft


SR = 16000.0


def _tone(freq, n=16000, sr=SR):
    return np.sin(2 * np.pi * freq * np.arange(n) / sr)


class TestStft:
    def test_shape(self):
        spec = stft(_tone(440), n_fft=512, hop_length=256)
        assert spec.shape[1] == 257

    def test_tone_peak_bin(self):
        spec = magnitude_spectrogram(_tone(1000), n_fft=512, hop_length=256)
        peak_bin = spec[5].argmax()
        expected = round(1000 / (SR / 512))
        assert abs(peak_bin - expected) <= 1

    def test_power_is_square_of_magnitude(self):
        sig = _tone(440, n=4096)
        mag = magnitude_spectrogram(sig, n_fft=256, hop_length=128)
        power = power_spectrogram(sig, n_fft=256, hop_length=128)
        assert np.allclose(power, mag**2)

    def test_window_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            stft(_tone(440), n_fft=256, hop_length=128, window=np.ones(128))


class TestMelScale:
    def test_roundtrip(self):
        freqs = np.array([0.0, 100.0, 1000.0, 4000.0, 8000.0])
        assert np.allclose(mel_to_hz(hz_to_mel(freqs)), freqs)

    def test_monotonic(self):
        mels = hz_to_mel(np.linspace(0, 8000, 100))
        assert np.all(np.diff(mels) > 0)

    def test_1000hz_is_1000mel(self):
        assert hz_to_mel(1000.0) == pytest.approx(1000.0, rel=0.001)


class TestMelFilterbank:
    def test_shape_and_coverage(self):
        fbank = mel_filterbank(26, 512, SR)
        assert fbank.shape == (26, 257)
        assert np.all(fbank.sum(axis=1) > 0)

    def test_non_negative(self):
        fbank = mel_filterbank(20, 256, SR)
        assert np.all(fbank >= 0)

    def test_tiny_fft_still_covers(self):
        fbank = mel_filterbank(12, 64, SR)
        assert np.all(fbank.sum(axis=1) > 0)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            mel_filterbank(0, 512, SR)
        with pytest.raises(ValueError):
            mel_filterbank(10, 512, SR, fmin=9000.0)


class TestDct:
    def test_matches_scipy(self):
        from scipy.fft import dct as scipy_dct

        x = np.random.default_rng(0).standard_normal((5, 16))
        ours = dct_ii(x)
        ref = scipy_dct(x, type=2, norm="ortho", axis=-1)
        assert np.allclose(ours, ref)

    def test_truncated_output(self):
        x = np.random.default_rng(1).standard_normal(32)
        assert dct_ii(x, n_out=8).shape == (8,)

    @given(st.integers(2, 24))
    @settings(max_examples=20, deadline=None)
    def test_property_orthonormal_energy(self, n):
        x = np.random.default_rng(n).standard_normal(n)
        # Parseval: orthonormal DCT preserves energy.
        assert np.sum(dct_ii(x) ** 2) == pytest.approx(np.sum(x**2), rel=1e-9)


class TestMfcc:
    def test_shape(self):
        out = mfcc(_tone(300), SR, n_mfcc=13, n_mels=26, n_fft=512, hop_length=256)
        assert out.shape[1] == 13
        assert np.isfinite(out).all()

    def test_distinguishes_tones(self):
        low = mfcc(_tone(150), SR).mean(axis=0)
        high = mfcc(_tone(3000), SR).mean(axis=0)
        assert not np.allclose(low, high, atol=0.5)

    def test_n_mfcc_exceeds_mels_raises(self):
        with pytest.raises(ValueError):
            mfcc(_tone(300), SR, n_mfcc=30, n_mels=26)

    def test_silence_is_finite(self):
        out = mfcc(np.zeros(8000), SR)
        assert np.isfinite(out).all()
