"""The network daemon: handshake, gates, preemption, reaping, admin plane."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.affect.pipeline import AffectClassifierPipeline
from repro.daemon import protocol
from repro.daemon.bench import _http_get, run_daemon_bench
from repro.daemon.server import DaemonConfig, ReproDaemon
from repro.datasets import emovo_like
from repro.datasets.speech import synthesize_utterance
from repro.obs import get_registry, labeled
from repro.serve import AffectServer, ServeConfig


@pytest.fixture(scope="module")
def pipeline():
    corpus = emovo_like(n_per_class=4, seed=0)
    p = AffectClassifierPipeline("mlp", seed=0)
    p.train(corpus, epochs=3)
    return p


@pytest.fixture(scope="module")
def wave(pipeline):
    return synthesize_utterance(pipeline.classifier.label_names[0],
                                actor=0, sentence=0, take=0)


def make_daemon(pipeline, tmp_path, *, serve: dict | None = None,
                **daemon_kwargs) -> ReproDaemon:
    server = AffectServer(pipeline, ServeConfig(**(serve or {})))
    daemon_kwargs.setdefault("port", 0)
    daemon_kwargs.setdefault("admin_port", 0)
    daemon_kwargs.setdefault("bundle_dir", str(tmp_path / "incidents"))
    return ReproDaemon(server, DaemonConfig(**daemon_kwargs))


class Client:
    """Minimal test client over a real loopback socket."""

    def __init__(self) -> None:
        self.decoder = protocol.FrameDecoder()
        self.frames: list[dict] = []

    async def connect(self, daemon: ReproDaemon, session_id: str) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            daemon.config.host, daemon.port
        )
        self.send(protocol.hello_frame(session_id))
        welcome = await self.expect("welcome")
        assert welcome["session"] == session_id

    def send(self, frame: dict) -> None:
        self.writer.write(protocol.encode_frame(frame))

    async def recv(self, timeout: float = 5.0) -> dict | None:
        while not self.frames:
            data = await asyncio.wait_for(self.reader.read(65536), timeout)
            if not data:
                return None
            self.frames.extend(self.decoder.feed(data))
        return self.frames.pop(0)

    async def expect(self, kind: str, timeout: float = 5.0) -> dict:
        frame = await self.recv(timeout)
        assert frame is not None, f"connection closed awaiting {kind!r}"
        assert frame["type"] == kind, frame
        return frame

    def close(self) -> None:
        try:
            self.writer.close()
        except (ConnectionError, RuntimeError, OSError):
            pass


class TestIngest:
    def test_window_round_trip(self, pipeline, wave, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                client = Client()
                await client.connect(daemon, "u-1")
                client.send(protocol.window_frame(0, wave))
                result = await client.expect("result")
                assert result["seq"] == 0
                assert result["outcome"] in (
                    "completed", "cached", "absorbed", "shed"
                )
                assert result["label"] in pipeline.classifier.label_names
                client.send({"type": "ping", "t": 1.0})
                pong = await client.expect("pong")
                assert pong["t"] == 1.0
                client.send({"type": "bye"})
                await client.expect("goodbye")
                client.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_seq_mapping_across_pipelined_windows(self, pipeline, wave,
                                                  tmp_path):
        # Client-chosen seqs (not 0..n) must come back on the replies
        # even when windows pend across deadline flushes.
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False,
                                 serve={"max_batch": 64, "max_wait_s": 0.05})
            await daemon.start()
            try:
                client = Client()
                await client.connect(daemon, "u-seq")
                seqs = [7, 3, 99]
                for seq in seqs:
                    client.send(protocol.window_frame(seq, wave))
                got = []
                for _ in seqs:
                    got.append((await client.expect("result"))["seq"])
                assert got == seqs
                client.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_inflight_gate_sheds_explicitly(self, pipeline, wave, tmp_path):
        async def run():
            # A huge deadline keeps the first window pending, so the
            # second trips the in-flight gate and must be answered NOW.
            daemon = make_daemon(
                pipeline, tmp_path, monitor=False, max_inflight=1,
                serve={"max_batch": 64, "max_wait_s": 60.0},
            )
            await daemon.start()
            try:
                client = Client()
                await client.connect(daemon, "u-gate")
                client.send(protocol.window_frame(0, wave))
                client.send(protocol.window_frame(1, wave))
                shed = await client.expect("result")
                assert shed["seq"] == 1
                assert shed["outcome"] == "shed"
                assert shed["shed"] is True
                assert daemon.daemon_shed == 1
                client.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_malformed_frame_gets_error_and_close(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                client = Client()
                await client.connect(daemon, "u-bad")
                client.writer.write(b"this is not json\n")
                error = await client.expect("error")
                assert "frame" in error["error"] or "error" in error
                assert await client.recv() is None  # closed after error
                client.close()
            finally:
                await daemon.stop()

        asyncio.run(run())


class TestAdmissionAndReaping:
    def test_capacity_preemption_is_explicit_lru(self, pipeline, wave,
                                                 tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False,
                                 max_connections=1)
            await daemon.start()
            try:
                first = Client()
                await first.connect(daemon, "u-old")
                first.send(protocol.window_frame(0, wave))
                await first.expect("result")
                assert "u-old" in daemon.server.sessions

                second = Client()
                await second.connect(daemon, "u-new")
                bounced = await first.expect("preempted")
                assert bounced["reason"] == "capacity"
                # The preempted peer's session is reaped with it.
                assert "u-old" not in daemon.server.sessions
                assert daemon.route_ids() == ["u-new"]
                preempted = get_registry().counter(
                    labeled("serve.sessions.preempted", reason="preempted")
                )
                assert preempted.value >= 1
                first.close()
                second.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_same_session_takeover(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                first = Client()
                await first.connect(daemon, "u-dup")
                second = Client()
                await second.connect(daemon, "u-dup")
                bounced = await first.expect("preempted")
                assert bounced["reason"] == "takeover"
                assert daemon.route_ids() == ["u-dup"]
                first.close()
                second.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_refusal_when_preemption_disabled(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False,
                                 max_connections=1, preempt=False)
            await daemon.start()
            try:
                first = Client()
                await first.connect(daemon, "u-a")
                second = Client()
                second.reader, second.writer = await asyncio.open_connection(
                    daemon.config.host, daemon.port
                )
                second.send(protocol.hello_frame("u-b"))
                error = await second.expect("error")
                assert "capacity" in error["error"]
                assert daemon.route_ids() == ["u-a"]
                first.close()
                second.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_abrupt_disconnect_reaps_session(self, pipeline, wave, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                client = Client()
                await client.connect(daemon, "u-gone")
                client.send(protocol.window_frame(0, wave))
                await client.expect("result")
                assert "u-gone" in daemon.server.sessions
                client.writer.transport.abort()  # no FIN-drain, no bye
                for _ in range(100):
                    if "u-gone" not in daemon.server.sessions:
                        break
                    await asyncio.sleep(0.02)
                assert "u-gone" not in daemon.server.sessions
                assert daemon.route_ids() == []
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_inflight_window_of_preempted_session_is_unroutable(
            self, pipeline, wave, tmp_path):
        # A window pending in the batcher when its session is preempted
        # completes against a detached stand-in; the daemon counts the
        # reply unroutable instead of resurrecting the session.
        async def run():
            daemon = make_daemon(
                pipeline, tmp_path, monitor=False, max_connections=1,
                serve={"max_batch": 64, "max_wait_s": 60.0},
            )
            await daemon.start()
            try:
                first = Client()
                await first.connect(daemon, "u-flight")
                first.send(protocol.window_frame(0, wave))
                await asyncio.sleep(0.1)  # let the window reach the batcher
                assert daemon.server.pending == 1

                second = Client()
                await second.connect(daemon, "u-evictor")
                await first.expect("preempted")
                drained = await daemon._run(
                    daemon.server.drain, daemon.now()
                )
                daemon._dispatch(drained)
                assert "u-flight" not in daemon.server.sessions
                assert daemon.unroutable >= 1
                assert daemon.server.dropped == 0
                first.close()
                second.close()
            finally:
                await daemon.stop()

        asyncio.run(run())


class TestAdminPlane:
    def test_healthz_metrics_bundles(self, pipeline, wave, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path)
            await daemon.start()
            try:
                client = Client()
                await client.connect(daemon, "u-admin")
                client.send(protocol.window_frame(0, wave))
                await client.expect("result")

                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/healthz"
                )
                assert status == 200
                health = json.loads(body)
                assert health["ok"] is True
                assert health["connections"] == 1
                assert health["server"]["submitted"] >= 1

                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/metrics"
                )
                assert status == 200
                text = body.decode("utf-8")
                assert "repro_serve_requests" in text
                assert "repro_daemon_connections" in text

                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/bundles"
                )
                assert status == 200
                assert json.loads(body) == {"bundles": []}

                status, _ = await _http_get(
                    daemon.config.host, daemon.admin_port,
                    "/bundles/../etc/passwd"
                )
                assert status == 404
                status, _ = await _http_get(
                    daemon.config.host, daemon.admin_port, "/nope"
                )
                assert status == 404
                client.close()
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_bundle_endpoint_serves_recorded_incident(self, pipeline,
                                                      tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path)
            await daemon.start()
            try:
                # Force an incident bundle through the recorder rather
                # than simulating a real page: the admin plane serves
                # whatever the recorder wrote.
                daemon.recorder.record(get_registry(), now=1.0)
                bundle_path = daemon.recorder.dump(
                    reason="test-incident", at=1.0
                )
                bundle_id = bundle_path.replace("\\", "/").rsplit("/", 1)[-1]
                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/bundles"
                )
                assert status == 200
                assert bundle_id in json.loads(body)["bundles"]
                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port,
                    f"/bundles/{bundle_id}"
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["id"] == bundle_id
                assert payload["incident"]["reason"] == "test-incident"
                assert isinstance(payload["snapshots"], list)
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_post_is_rejected(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                reader, writer = await asyncio.open_connection(
                    daemon.config.host, daemon.admin_port
                )
                writer.write(b"POST /healthz HTTP/1.1\r\n\r\n")
                raw = await asyncio.wait_for(reader.read(), 5.0)
                writer.close()
                assert b"405" in raw.split(b"\r\n", 1)[0]
            finally:
                await daemon.stop()

        asyncio.run(run())


class TestDaemonBenchSmoke:
    def test_small_bench_passes_gates(self, pipeline, tmp_path):
        report = run_daemon_bench(
            sessions=6, seconds=1.0, seed=0, chaos_sessions=2,
            period_s=0.2, pipeline=pipeline,
            bundle_dir=str(tmp_path / "incidents"),
        )
        gates = report["gates"]
        assert gates["ok"], gates
        traffic = report["traffic"]
        assert traffic["silent_drops"] == 0
        assert traffic["peak_concurrent"] >= 6
        assert report["chaos"]["aborted"] == 2
        assert report["chaos"]["leaked_sessions"] == []
        assert report["preemption"]["preempted_frames"] == 2


class TestProfPlane:
    def test_cumulative_cpu_profile_parses(self, pipeline, wave, tmp_path):
        from repro.obs.prof import parse_collapsed

        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                assert daemon.profiler is not None
                assert daemon.profiler.running
                client = Client()
                await client.connect(daemon, "u-prof")
                client.send(protocol.window_frame(0, wave))
                await client.expect("result")
                await asyncio.sleep(0.1)  # let the resident sampler tick
                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/debug/prof/cpu"
                )
                assert status == 200
                stacks = parse_collapsed(body.decode("utf-8"))
                assert stacks, "resident sampler recorded nothing"
                assert sum(stacks.values()) >= 1
                client.close()
            finally:
                await daemon.stop()
            assert not daemon.profiler.running  # stop() joined the sampler

        asyncio.run(run())

    def test_windowed_profile_does_not_block_metrics(self, pipeline,
                                                     tmp_path):
        from repro.obs.prof import parse_collapsed

        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                window = asyncio.create_task(_http_get(
                    daemon.config.host, daemon.admin_port,
                    "/debug/prof/cpu?seconds=1.5", timeout=10.0,
                ))
                await asyncio.sleep(0.05)
                # The plane keeps serving while the window collects.
                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/metrics"
                )
                assert status == 200
                assert b"repro_" in body
                assert not window.done(), "window returned implausibly fast"
                status, body = await window
                assert status == 200
                parse_collapsed(body.decode("utf-8"))  # may be empty, parses
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_seconds_clamp(self):
        from repro.daemon.admin import (
            PROF_MAX_SECONDS,
            _parse_prof_seconds,
            clamp_prof_seconds,
        )

        assert clamp_prof_seconds(-5.0) == 0.0
        assert clamp_prof_seconds(0.0) == 0.0
        assert clamp_prof_seconds(2.5) == 2.5
        assert clamp_prof_seconds(999.0) == PROF_MAX_SECONDS
        assert clamp_prof_seconds(float("nan")) == 0.0
        assert _parse_prof_seconds("/debug/prof/cpu") == 0.0
        assert _parse_prof_seconds("/debug/prof/cpu?seconds=2") == 2.0
        assert _parse_prof_seconds("/debug/prof/cpu?seconds=1e9") \
            == PROF_MAX_SECONDS
        assert _parse_prof_seconds("/debug/prof/cpu?seconds=abc") is None

    def test_malformed_seconds_is_400(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                status, _ = await _http_get(
                    daemon.config.host, daemon.admin_port,
                    "/debug/prof/cpu?seconds=abc"
                )
                assert status == 400
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_unknown_prof_kind_is_404(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                status, _ = await _http_get(
                    daemon.config.host, daemon.admin_port, "/debug/prof/wat"
                )
                assert status == 404
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_profiling_disabled_is_503(self, pipeline, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False,
                                 profile=False)
            await daemon.start()
            try:
                assert daemon.profiler is None
                for path in ("/debug/prof/cpu", "/debug/prof/heap"):
                    status, _ = await _http_get(
                        daemon.config.host, daemon.admin_port, path
                    )
                    assert status == 503, path
            finally:
                await daemon.stop()

        asyncio.run(run())

    def test_heap_endpoint_starts_lazily(self, pipeline, wave, tmp_path):
        async def run():
            daemon = make_daemon(pipeline, tmp_path, monitor=False)
            await daemon.start()
            try:
                assert daemon._heap is None  # tracemalloc not yet paid for
                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/debug/prof/heap"
                )
                assert status == 200
                report = json.loads(body)
                assert report["tracing"] is True
                assert daemon._heap is not None
                first = daemon._heap
                # The live heap profiler is now wired into the sampler.
                assert daemon.profiler.heap is first
                client = Client()
                await client.connect(daemon, "u-heap")
                client.send(protocol.window_frame(0, wave))
                await client.expect("result")
                status, body = await _http_get(
                    daemon.config.host, daemon.admin_port, "/debug/prof/heap"
                )
                assert status == 200
                report = json.loads(body)
                assert daemon._heap is first  # reused, not restarted
                assert report["current_bytes"] >= 0
                client.close()
            finally:
                await daemon.stop()
            assert daemon._heap is None  # stop() tore tracemalloc down

        asyncio.run(run())
