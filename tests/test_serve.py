"""The multi-session serving runtime: cache, batcher, sessions, server."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.affect.pipeline import AffectClassifierPipeline
from repro.datasets import emovo_like
from repro.datasets.speech import synthesize_utterance
from repro.errors import OverloadShedError, SessionEvictedError
from repro.resilience import CLOSED, OPEN, CircuitBreaker
from repro.serve import (
    AffectServer,
    BatchRequest,
    LRUCache,
    MicroBatcher,
    ServeConfig,
    SessionManager,
    window_hash,
)


@pytest.fixture(scope="module")
def pipeline():
    corpus = emovo_like(n_per_class=4, seed=0)
    p = AffectClassifierPipeline("mlp", seed=0)
    p.train(corpus, epochs=3)
    return p


@pytest.fixture(scope="module")
def waves(pipeline):
    labels = pipeline.classifier.label_names
    return [
        synthesize_utterance(labels[i % len(labels)], actor=i % 4,
                             sentence=i % 3, take=i)
        for i in range(8)
    ]


class TestWindowHash:
    def test_content_keyed(self):
        a = np.arange(64, dtype=np.float64)
        assert window_hash(a) == window_hash(a.copy())
        assert window_hash(a) != window_hash(a + 1e-12)

    def test_dtype_and_shape_sensitive(self):
        a = np.zeros(16, dtype=np.float64)
        assert window_hash(a) != window_hash(a.astype(np.float32))
        assert window_hash(a) != window_hash(a.reshape(4, 4))

    def test_non_contiguous_view(self):
        a = np.arange(32, dtype=np.float64)
        assert window_hash(a[::2]) == window_hash(a[::2].copy())


class TestLRUCache:
    def test_capacity_evicts_least_recent(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_hit_miss_accounting(self):
        cache = LRUCache(capacity=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("absent") is None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_peek_does_not_touch(self):
        cache = LRUCache(capacity=1)
        cache.put("k", "v")
        assert cache.peek("k") == "v"
        assert cache.peek("absent") is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_threaded_mixed_operations(self):
        # Regression: the unlocked OrderedDict could corrupt its recency
        # list (or raise KeyError out of get) under concurrent
        # put/get/eviction from serve threads.
        cache = LRUCache(capacity=8)
        errors: list[Exception] = []

        def storm(worker: int) -> None:
            try:
                for i in range(400):
                    key = f"k{(worker * 7 + i) % 24}"
                    cache.put(key, (worker, i))
                    cache.get(key)
                    cache.get(f"k{i % 24}")
                    cache.peek(f"k{(i + 5) % 24}")
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=storm, args=(w,))
                   for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 8
        # Counters stay exact: every get was either a hit or a miss.
        assert cache.hits + cache.misses == 6 * 400 * 2


def _request(key: str, sid: str = "s", now: float = 0.0,
             seq: int = 0) -> BatchRequest:
    features = np.full((2, 3), float(sum(map(ord, key))))
    return BatchRequest(session_id=sid, key=key, features=features,
                        submitted_at=now, seq=seq)


class TestMicroBatcher:
    def test_flush_on_full(self):
        calls = []

        def predict(x):
            calls.append(x.shape[0])
            return np.arange(x.shape[0])

        batcher = MicroBatcher(predict, max_batch=3, max_wait_s=10.0)
        assert batcher.submit(_request("a"), 0.0) == []
        assert batcher.submit(_request("b"), 0.1) == []
        results = batcher.submit(_request("c"), 0.2)
        assert [r.label_index for r in results] == [0, 1, 2]
        assert calls == [3]
        assert batcher.depth == 0

    def test_flush_on_deadline(self):
        batcher = MicroBatcher(lambda x: np.zeros(len(x), dtype=int),
                               max_batch=100, max_wait_s=0.5)
        batcher.submit(_request("a", now=1.0), 1.0)
        assert not batcher.due(1.4)
        assert batcher.poll(1.4) == []
        assert batcher.due(1.5)
        results = batcher.poll(1.6)
        assert len(results) == 1
        assert results[0].flushed_at == 1.6
        assert batcher.poll(1.7) == []  # nothing pending

    def test_identical_windows_coalesce_to_one_row(self):
        shapes = []

        def predict(x):
            shapes.append(x.shape[0])
            return np.arange(x.shape[0]) + 7

        batcher = MicroBatcher(predict, max_batch=4, max_wait_s=1.0)
        batcher.submit(_request("same", sid="u1"), 0.0)
        batcher.submit(_request("same", sid="u2"), 0.0)
        batcher.submit(_request("same", sid="u3"), 0.0)
        results = batcher.submit(_request("other", sid="u4"), 0.0)
        assert shapes == [2]  # 4 requests, 2 unique windows
        by_sid = {r.request.session_id: r.label_index for r in results}
        assert by_sid == {"u1": 7, "u2": 7, "u3": 7, "u4": 8}

    def test_failure_degrades_and_opens_breaker(self):
        def predict(x):
            raise RuntimeError("model crashed")

        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0)
        batcher = MicroBatcher(predict, max_batch=1, breaker=breaker)
        results = batcher.submit(_request("a"), 0.0)
        assert results[0].degraded and results[0].label_index is None
        assert breaker.state == OPEN
        # While open, flushes shed without calling the model at all.
        results = batcher.submit(_request("b"), 1.0)
        assert results[0].degraded
        assert batcher.degraded_flushes == 2

    def test_breaker_recovery_restores_service(self):
        healthy = [False]

        def predict(x):
            if not healthy[0]:
                raise RuntimeError("down")
            return np.zeros(len(x), dtype=int)

        breaker = CircuitBreaker(failure_threshold=1, recovery_s=2.0)
        batcher = MicroBatcher(predict, max_batch=1, breaker=breaker)
        assert batcher.submit(_request("a"), 0.0)[0].degraded
        healthy[0] = True
        # Past recovery_s the half-open probe succeeds and closes it.
        results = batcher.submit(_request("b"), 3.0)
        assert not results[0].degraded
        assert breaker.state == CLOSED

    def test_invalid_config(self):
        predict = lambda x: np.zeros(len(x), dtype=int)  # noqa: E731
        with pytest.raises(ValueError):
            MicroBatcher(predict, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(predict, max_wait_s=-1.0)


class TestSessionManager:
    def test_create_touch_and_order(self):
        manager = SessionManager(idle_ttl_s=10.0, max_sessions=8)
        manager.get_or_create("a", 0.0)
        manager.get_or_create("b", 1.0)
        manager.get_or_create("a", 2.0)  # touch re-orders
        assert manager.ids() == ["b", "a"]
        assert manager.created == 2

    def test_idle_eviction(self):
        manager = SessionManager(idle_ttl_s=5.0)
        manager.get_or_create("old", 0.0)
        manager.get_or_create("fresh", 4.0)
        assert manager.evict_idle(6.0) == 1
        assert "old" not in manager and "fresh" in manager
        with pytest.raises(SessionEvictedError):
            manager.get("old")

    def test_lru_cap_eviction(self):
        manager = SessionManager(idle_ttl_s=100.0, max_sessions=2)
        manager.get_or_create("a", 0.0)
        manager.get_or_create("b", 1.0)
        manager.get_or_create("c", 2.0)  # evicts "a"
        assert manager.ids() == ["b", "c"]
        assert manager.evicted_lru == 1

    def test_degraded_labels_do_not_vote(self):
        manager = SessionManager(idle_ttl_s=10.0)
        session = manager.get_or_create("u", 0.0)
        for t in range(3):  # enough live votes to commit "happy"
            session.deliver("happy", float(t), degraded=False)
        for t in range(3, 8):
            session.deliver("angry", float(t), degraded=True)
        # Degraded evidence was withheld; the stream saw only "happy".
        assert session.manager.current_emotion == "happy"
        assert session.degraded_windows == 5
        assert session.windows == 8
        assert session.fallback_label == "happy"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SessionManager(idle_ttl_s=0.0)
        with pytest.raises(ValueError):
            SessionManager(max_sessions=0)


class TestAffectServer:
    def _server(self, pipeline, **overrides) -> AffectServer:
        defaults = dict(max_batch=4, max_wait_s=0.5, max_queue=64,
                        idle_ttl_s=100.0, stale_ttl_s=None)
        defaults.update(overrides)
        return AffectServer(pipeline, ServeConfig(**defaults))

    def test_requires_trained_pipeline(self):
        with pytest.raises(ValueError):
            AffectServer(AffectClassifierPipeline("mlp", seed=0))

    def test_served_labels_match_sequential_classification(self, pipeline,
                                                           waves):
        server = self._server(pipeline)
        results = []
        for i, wave in enumerate(waves):
            results += server.submit(f"user-{i % 2}", wave, now=0.1 * i)
        results += server.drain(now=1.0)
        assert len(results) == len(waves)
        expected = {i: pipeline.classify_waveform(w)
                    for i, w in enumerate(waves)}
        for result in sorted(results, key=lambda r: r.seq):
            assert not result.degraded and not result.shed
            assert result.label == expected[result.seq]

    def test_cache_hit_skips_dsp_and_inference(self, pipeline, waves):
        server = self._server(pipeline, max_batch=1)
        first = server.submit("u1", waves[0], now=0.0)
        assert len(first) == 1 and not first[0].cached
        flushes_before = server.batcher.flushes
        # Same window from another session: served from cache, no flush.
        second = server.submit("u2", waves[0], now=0.1)
        assert len(second) == 1 and second[0].cached
        assert second[0].label == first[0].label
        assert second[0].latency_s == 0.0
        assert server.batcher.flushes == flushes_before

    def test_poll_flushes_on_deadline_and_evicts_idle(self, pipeline, waves):
        server = self._server(pipeline, max_batch=100, max_wait_s=0.5,
                              idle_ttl_s=2.0)
        assert server.submit("u1", waves[0], now=0.0) == []
        assert server.poll(now=0.4) == []
        results = server.poll(now=0.6)
        assert len(results) == 1 and results[0].completed_at == 0.6
        assert len(server.sessions) == 1
        server.poll(now=10.0)
        assert len(server.sessions) == 0

    def test_overload_sheds_to_fallback_never_drops(self, pipeline, waves):
        server = self._server(pipeline, max_batch=100, max_wait_s=10.0,
                              max_queue=3)
        results = []
        for i in range(8):
            results += server.submit(f"u{i}", waves[i], now=0.0)
        shed = [r for r in results if r.shed]
        assert len(shed) == 5  # queue holds 3, the rest shed immediately
        for result in shed:
            assert result.degraded
            assert result.label == server.neutral_label  # no last-good yet
        results += server.drain(now=1.0)
        assert server.dropped == 0
        assert server.submitted == len(results) == 8

    def test_strict_admission_raises(self, pipeline, waves):
        server = self._server(pipeline, max_queue=1, max_wait_s=10.0,
                              max_batch=100, strict_admission=True)
        server.submit("u1", waves[0], now=0.0)
        with pytest.raises(OverloadShedError):
            server.submit("u2", waves[1], now=0.0)
        # Rejected requests never count as submitted (nothing to account).
        assert server.submitted == 1
        assert server.dropped == 0

    def test_batch_failure_degrades_to_session_fallback(self, pipeline,
                                                        waves):
        server = self._server(pipeline, max_batch=1)
        good = server.submit("u1", waves[0], now=0.0)[0]
        assert not good.degraded
        server.batcher.predict_batch = lambda x: (_ for _ in ()).throw(
            RuntimeError("model crashed")
        )
        degraded = server.submit("u1", waves[1], now=1.0)[0]
        assert degraded.degraded
        assert degraded.label == good.label  # last live label, not neutral
        stats = server.stats()
        assert stats["degraded_flushes"] == 1
        assert not stats["healthy"] or stats["breaker_state"] == CLOSED

    def test_stats_shape(self, pipeline, waves):
        server = self._server(pipeline)
        server.submit("u1", waves[0], now=0.0)
        server.drain(now=1.0)
        stats = server.stats()
        assert stats["submitted"] == stats["completed"] == 1
        assert stats["dropped"] == 0 and stats["healthy"]
        assert stats["sessions_active"] == 1

    def test_concurrent_submitters_account_exactly(self, pipeline, waves):
        server = self._server(pipeline, max_batch=8, max_wait_s=0.1)
        results, errors = [], []
        lock = threading.Lock()

        def drive(worker: int) -> None:
            try:
                for i in range(16):
                    out = server.submit(f"w{worker}", waves[(worker + i) % 8],
                                        now=float(i))
                    with lock:
                        results.extend(out)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results.extend(server.drain(now=100.0))
        assert errors == []
        assert server.submitted == 64
        assert len(results) == 64
        assert server.dropped == 0


class TestMicroBatcherConcurrency:
    def test_depth_and_gauge_consistent_under_storm(self):
        # Regression: ``depth`` used to read the pending list without
        # the lock, and the flush reported its queue-depth gauge delta
        # outside the drain, so admission checks could race a flush.
        from repro.obs import get_registry

        gauge_before = get_registry().snapshot()["gauges"].get(
            "serve.queue_depth", 0.0
        )
        batcher = MicroBatcher(lambda x: np.zeros(len(x), dtype=int),
                               max_batch=4, max_wait_s=100.0)
        results: list[object] = []
        errors: list[Exception] = []
        lock = threading.Lock()

        def storm(worker: int) -> None:
            try:
                for i in range(60):
                    out = batcher.submit(
                        _request(f"w{worker}-{i}", sid=f"w{worker}",
                                 seq=i), 0.0,
                    )
                    out += batcher.flush(0.0) if i % 7 == 0 else []
                    with lock:
                        results.extend(out)
                    assert batcher.depth >= 0
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=storm, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results.extend(batcher.flush(0.0))
        assert errors == []
        assert len(results) == 4 * 60
        assert batcher.depth == 0
        gauge_after = get_registry().snapshot()["gauges"].get(
            "serve.queue_depth", 0.0
        )
        # Every +1 submit was matched by a drain's -1 from the same
        # snapshot: the gauge nets out to exactly where it started.
        assert gauge_after == pytest.approx(gauge_before)


class TestFlushTimeDsp:
    def _raw_request(self, key: str, sid: str = "s",
                     value: float = 1.0) -> BatchRequest:
        return BatchRequest(session_id=sid, key=key,
                            signal=np.full(64, value))

    def test_unique_raw_signals_prepared_once(self):
        calls: list[int] = []

        def prepare(signals):
            calls.append(len(signals))
            return np.stack([np.full((2, 3), s[0]) for s in signals])

        batcher = MicroBatcher(lambda x: np.arange(len(x)),
                               max_batch=10, max_wait_s=10.0,
                               prepare_batch=prepare)
        # Three sessions, two distinct windows: DSP runs once, over the
        # two unique signals only.
        batcher.submit(self._raw_request("a", sid="u1", value=1.0), 0.0)
        batcher.submit(self._raw_request("a", sid="u2", value=1.0), 0.0)
        batcher.submit(self._raw_request("b", sid="u3", value=2.0), 0.0)
        results = batcher.flush(0.0)
        assert calls == [2]
        assert [r.label_index for r in results] == [0, 0, 1]
        for result in results:
            assert result.features is not None
            assert not result.degraded

    def test_prepared_features_skip_dsp(self):
        def prepare(signals):  # pragma: no cover - must not run
            raise AssertionError("DSP ran for an already-prepared row")

        batcher = MicroBatcher(lambda x: np.zeros(len(x), dtype=int),
                               max_batch=10, max_wait_s=10.0,
                               prepare_batch=prepare)
        batcher.submit(_request("a"), 0.0)
        results = batcher.flush(0.0)
        assert len(results) == 1 and not results[0].degraded

    def test_dsp_failure_degrades_whole_flush(self):
        from repro.obs import get_registry

        def prepare(signals):
            raise RuntimeError("front end fell over")

        predict_calls: list[int] = []

        def predict(x):  # pragma: no cover - must not run
            predict_calls.append(len(x))
            return np.zeros(len(x), dtype=int)

        batcher = MicroBatcher(predict, max_batch=10, max_wait_s=10.0,
                               prepare_batch=prepare)
        batcher.submit(self._raw_request("a"), 0.0)
        batcher.submit(self._raw_request("b"), 0.0)
        results = batcher.flush(0.0)
        assert predict_calls == []
        assert [r.label_index for r in results] == [None, None]
        assert all(r.degraded for r in results)
        assert batcher.degraded_flushes == 1
        counters = get_registry().snapshot()["counters"]
        assert counters.get("serve.batch.dsp_failures", 0) >= 1

    def test_raw_signal_without_hook_degrades(self):
        batcher = MicroBatcher(lambda x: np.zeros(len(x), dtype=int),
                               max_batch=10, max_wait_s=10.0)
        batcher.submit(self._raw_request("a"), 0.0)
        results = batcher.flush(0.0)
        assert results[0].degraded and results[0].label_index is None


class TestInt8ServePath:
    def test_server_defaults_to_quantized_model(self, pipeline):
        server = AffectServer(pipeline, ServeConfig())
        assert server.batcher.predict_batch.__self__ is pipeline.quantize()

    def test_float_path_opt_out(self, pipeline):
        server = AffectServer(pipeline, ServeConfig(quantized=False))
        assert (server.batcher.predict_batch.__self__
                is pipeline.classifier)

    def test_quantized_and_float_serving_agree(self, pipeline, waves):
        def run(quantized: bool) -> list[str]:
            server = AffectServer(pipeline, ServeConfig(
                max_batch=4, max_wait_s=0.5, idle_ttl_s=100.0,
                stale_ttl_s=None, quantized=quantized,
            ))
            results = []
            for i, wave in enumerate(waves):
                results += server.submit(f"u{i % 3}", wave, now=0.1 * i)
            results += server.drain(now=10.0)
            return [r.label for r in sorted(results, key=lambda r: r.seq)]

        assert run(True) == run(False)

    def test_flush_backfills_cache_features_and_label(self, pipeline,
                                                      waves):
        from repro.serve.cache import CacheEntry

        server = AffectServer(pipeline, ServeConfig(
            max_batch=100, max_wait_s=10.0, idle_ttl_s=100.0,
            stale_ttl_s=None,
        ))
        key = window_hash(waves[0])
        assert server.submit("u1", waves[0], now=0.0) == []
        entry = server.cache.peek(key)
        # DSP is deferred: the placeholder entry dedups concurrent
        # submits but carries no features until the flush pays for them.
        assert isinstance(entry, CacheEntry)
        assert entry.features is None and entry.label is None
        results = server.drain(now=1.0)
        assert len(results) == 1 and not results[0].degraded
        entry = server.cache.peek(key)
        assert entry.features is not None
        assert entry.label == results[0].label
        expected = pipeline.prepare_waveform(waves[0])
        np.testing.assert_array_equal(entry.features, expected)


class TestServeBenchSmoke:
    def test_small_run_accounts_and_reports(self, pipeline):
        from repro.serve.bench import run_serve_bench

        report = run_serve_bench(sessions=4, seconds=1.0, seed=1,
                                 max_batch=8, pipeline=pipeline)
        acct = report["accounting"]
        assert acct["dropped"] == 0
        assert acct["submitted"] == acct["completed"] + acct["shed"]
        assert report["sequential"]["windows"] == report["served"]["windows"]
        assert report["speedup"] > 0.0

    def test_parity_gates_pass_on_bench_pool(self, pipeline):
        from repro.serve.bench import run_serve_bench

        report = run_serve_bench(sessions=2, seconds=0.5, seed=0,
                                 max_batch=4, pipeline=pipeline)
        parity = report["parity"]
        assert parity["dsp_batch_vs_single_ok"]
        assert parity["dsp_max_abs_diff"] == 0.0
        assert parity["int8_vs_float_ok"]
        assert parity["ok"]


class TestEvictionAndOutcomes:
    """The daemon-facing serve surface: evict(), outcomes, no resurrection."""

    def _server(self, pipeline, **overrides) -> AffectServer:
        defaults = dict(max_batch=64, max_wait_s=60.0, max_queue=64,
                        idle_ttl_s=100.0, stale_ttl_s=None)
        defaults.update(overrides)
        return AffectServer(pipeline, ServeConfig(**defaults))

    def test_evict_drops_session_and_counts_reason(self, pipeline, waves):
        from repro.obs import get_registry, labeled

        server = self._server(pipeline)
        server.submit("u-a", waves[0], now=0.0)
        before = get_registry().counter(
            labeled("serve.sessions.preempted", reason="ops-kill")
        ).value
        session = server.sessions.evict("u-a", reason="ops-kill")
        assert session is not None and session.session_id == "u-a"
        assert "u-a" not in server.sessions
        assert server.sessions.preempted >= 1
        after = get_registry().counter(
            labeled("serve.sessions.preempted", reason="ops-kill")
        ).value
        assert after == before + 1
        # Absent sessions are a no-op, not an error.
        assert server.sessions.evict("u-a") is None

    def test_peek_does_not_create_or_touch(self, pipeline, waves):
        server = self._server(pipeline)
        assert server.sessions.peek("ghost") is None
        assert "ghost" not in server.sessions
        server.submit("u-b", waves[0], now=0.0)
        assert server.sessions.peek("u-b") is not None

    def test_preemption_during_inflight_submit_never_resurrects(
            self, pipeline, waves):
        # The daemon's race: a window is in flight (pending in the
        # batcher) when the session is preempted from another thread.
        # The flush must deliver a well-formed result to a detached
        # stand-in -- and must NOT recreate the session table entry.
        from repro.obs import get_registry

        server = self._server(pipeline)
        assert server.submit("u-race", waves[0], now=0.0) == []
        assert server.pending == 1

        orphans_before = get_registry().counter(
            "serve.orphaned_results"
        ).value
        evicted = threading.Event()
        results: list = []

        def drainer():
            evicted.wait(timeout=5.0)
            results.extend(server.drain(now=1.0))

        thread = threading.Thread(target=drainer)
        thread.start()
        assert server.sessions.evict("u-race", reason="preempted")
        evicted.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

        assert len(results) == 1
        assert results[0].session_id == "u-race"
        assert results[0].label  # well-formed, accounted answer
        assert "u-race" not in server.sessions  # never resurrected
        assert server.dropped == 0
        assert get_registry().counter(
            "serve.orphaned_results"
        ).value == orphans_before + 1

    def test_repeated_evict_submit_race_never_leaks(self, pipeline, waves):
        server = self._server(pipeline, max_batch=1)
        stop = threading.Event()

        def evictor():
            while not stop.is_set():
                server.sessions.evict("u-hammer")

        thread = threading.Thread(target=evictor)
        thread.start()
        try:
            for i in range(50):
                server.submit("u-hammer", waves[i % len(waves)],
                              now=0.01 * i)
        finally:
            stop.set()
            thread.join(timeout=10.0)
        server.drain(now=10.0)
        server.sessions.evict("u-hammer")
        assert "u-hammer" not in server.sessions
        assert server.dropped == 0

    def test_outcome_field_for_each_path(self, pipeline, waves):
        server = self._server(pipeline, max_batch=1)
        completed = server.submit("u-o1", waves[0], now=0.0)
        assert completed[0].outcome == "completed"
        cached = server.submit("u-o2", waves[0], now=0.1)
        assert cached[0].outcome == "cached"

        slow = self._server(pipeline, max_queue=1)
        assert slow.submit("u-p", waves[1], now=0.0) == []
        shed = slow.submit("u-q", waves[2], now=0.1)
        assert shed[0].outcome == "shed" and shed[0].shed
        flushed = slow.drain(now=1.0)
        assert [r.outcome for r in flushed] == ["completed"]
