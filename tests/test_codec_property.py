"""Property-based encoder/decoder round-trip over random configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import Decoder, Encoder, EncoderConfig, synthetic_video
from repro.video.quality import sequence_psnr


class TestCodecProperties:
    @given(
        n_frames=st.integers(1, 6),
        gop=st.integers(1, 6),
        qp=st.integers(8, 40),
        use_b=st.booleans(),
        entropy=st.sampled_from(["eg", "cavlc"]),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip_decodes_everything(
        self, n_frames, gop, qp, use_b, entropy, seed
    ):
        frames = synthetic_video(n_frames, 32, 32, seed=seed)
        config = EncoderConfig(
            qp_i=qp, qp_p=min(qp + 2, 51), qp_b=min(qp + 4, 51),
            gop_size=gop, use_b_frames=use_b, entropy=entropy,
        )
        stream = Encoder(config).encode(frames)
        out = Decoder().decode(stream)
        assert len(out.frames) == n_frames
        assert out.concealed_indices == []
        # Quality degrades with QP but must stay bounded above garbage.
        floor = 32.0 - 0.55 * qp
        assert sequence_psnr(frames, out.frames) > max(12.0, floor)

    @given(qp=st.integers(8, 36), seed=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_property_encode_deterministic(self, qp, seed):
        frames = synthetic_video(3, 32, 32, seed=seed)
        config = EncoderConfig(qp_i=qp, gop_size=3)
        assert Encoder(config).encode(frames) == Encoder(config).encode(frames)

    def test_lower_qp_never_worse_quality(self):
        frames = synthetic_video(4, 32, 32, seed=7)
        psnrs = []
        for qp in (12, 24, 36):
            config = EncoderConfig(
                qp_i=qp, qp_p=qp + 2, qp_b=qp + 4, gop_size=4
            )
            out = Decoder().decode(Encoder(config).encode(frames))
            psnrs.append(sequence_psnr(frames, out.frames))
        assert psnrs[0] > psnrs[1] > psnrs[2]

    def test_entropy_modes_reconstruct_identically(self):
        frames = synthetic_video(5, 32, 32, seed=9)
        outs = {}
        for entropy in ("eg", "cavlc"):
            config = EncoderConfig(gop_size=5, entropy=entropy)
            outs[entropy] = Decoder().decode(Encoder(config).encode(frames))
        for a, b in zip(outs["eg"].frames, outs["cavlc"].frames):
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.u, b.u)
            assert np.array_equal(a.v, b.v)
