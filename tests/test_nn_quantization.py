"""Tests for int8 post-training quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.quantization import (
    INT8_MAX,
    INT8_MIN,
    compute_spec,
    dequantize_tensor,
    model_weight_bytes,
    quantize_model,
    quantize_tensor,
)


class TestTensorQuantization:
    def test_roundtrip_error_bounded_by_scale(self):
        rng = np.random.default_rng(0)
        tensor = rng.standard_normal((20, 20))
        q, spec = quantize_tensor(tensor)
        recon = dequantize_tensor(q, spec)
        assert np.max(np.abs(recon - tensor)) <= spec.scale * 0.5 + 1e-12

    def test_int8_range(self):
        tensor = np.linspace(-10, 10, 100)
        q, _ = quantize_tensor(tensor)
        assert q.dtype == np.int8
        assert q.min() >= INT8_MIN and q.max() <= INT8_MAX

    def test_constant_tensor(self):
        q, spec = quantize_tensor(np.zeros((3, 3)))
        assert np.all(dequantize_tensor(q, spec) == 0.0)

    def test_asymmetric_range_covered(self):
        tensor = np.array([0.0, 5.0, 10.0])
        q, spec = quantize_tensor(tensor)
        recon = dequantize_tensor(q, spec)
        assert np.max(np.abs(recon - tensor)) <= spec.scale

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=16),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_within_half_step(self, tensor):
        q, spec = quantize_tensor(tensor)
        recon = dequantize_tensor(q, spec)
        assert np.max(np.abs(recon - tensor)) <= spec.scale * 0.5 + 1e-9

    def test_spec_zero_point_in_range(self):
        spec = compute_spec(np.array([100.0, 101.0]))
        assert INT8_MIN <= spec.zero_point <= INT8_MAX

    def test_zero_point_clamps_at_extreme_positive_range(self):
        # All-positive tensors anchor lo at 0.0, putting the zero point
        # exactly on the low clamp; values must stay in int8 and the
        # roundtrip must still cover the range within one scale step.
        tensor = np.array([1e4, 2e4, 5e4])
        spec = compute_spec(tensor)
        assert spec.zero_point == INT8_MIN
        q = spec.quantize(tensor)
        assert q.min() >= INT8_MIN and q.max() <= INT8_MAX
        assert np.max(np.abs(spec.dequantize(q) - tensor)) <= spec.scale

    def test_zero_point_clamps_at_extreme_negative_range(self):
        tensor = np.array([-1e4, -2e4, -5e4])
        spec = compute_spec(tensor)
        assert spec.zero_point == INT8_MAX
        q = spec.quantize(tensor)
        assert q.min() >= INT8_MIN and q.max() <= INT8_MAX
        assert np.max(np.abs(spec.dequantize(q) - tensor)) <= spec.scale

    def test_tiny_single_sided_range_zero_point_in_range(self):
        for tensor in (np.array([1e-300, 3e-300]),
                       np.array([-3e-300, -1e-300])):
            spec = compute_spec(tensor)
            assert INT8_MIN <= spec.zero_point <= INT8_MAX
            q = spec.quantize(tensor)
            assert q.min() >= INT8_MIN and q.max() <= INT8_MAX


class TestModelQuantization:
    def _trained_model(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 6))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = Sequential([Dense(16, activation="relu"), Dense(2)])
        model.compile((6,), Adam(0.01))
        model.fit(x, y, epochs=20)
        return model, x, y

    def test_weight_bytes_4x_reduction(self):
        model, _, _ = self._trained_model()
        qmodel = quantize_model(model)
        assert model_weight_bytes(model, bits=32) == 4 * qmodel.weight_bytes

    def test_accuracy_within_3_percent(self):
        model, x, y = self._trained_model()
        float_acc = model.evaluate(x, y)
        qacc = quantize_model(model).evaluate(x, y)
        assert qacc >= float_acc - 0.03

    def test_float_weights_restored_after_inference(self):
        model, x, _ = self._trained_model()
        before = model.get_weights()
        quantize_model(model).predict(x)
        after = model.get_weights()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_roundtrip_error_positive_but_small(self):
        model, _, _ = self._trained_model()
        qmodel = quantize_model(model)
        err = qmodel.max_roundtrip_error()
        weights = model.get_weights()
        largest = max(np.abs(w).max() for w in weights.values())
        assert 0.0 <= err <= largest / 100.0

    def test_model_weight_bytes_validates_bits(self):
        model, _, _ = self._trained_model()
        with pytest.raises(ValueError):
            model_weight_bytes(model, bits=7)

    def test_predict_proba_shape(self):
        model, x, _ = self._trained_model()
        probs = quantize_model(model).predict_proba(x[:5])
        assert probs.shape == (5, 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_batch_matches_predict(self):
        model, x, _ = self._trained_model()
        qmodel = quantize_model(model)
        assert np.array_equal(qmodel.predict_batch(x), qmodel.predict(x))

    def test_inference_runs_on_shadow_not_shared_model(self):
        model, x, _ = self._trained_model()
        qmodel = quantize_model(model)
        float_probs = model.predict_proba(x)
        qmodel.predict(x)
        # The shared model's weights were never swapped, so its scratch
        # copy is distinct and float predictions are untouched.
        assert qmodel._shadow is not model
        assert np.array_equal(model.predict_proba(x), float_probs)

    def test_threaded_predict_consistent(self):
        # Regression for the _swap_in/_swap_out race: concurrent
        # quantized predicts (and float predicts on the shared model)
        # must all return exactly their single-threaded answers.
        import threading

        model, x, _ = self._trained_model()
        qmodel = quantize_model(model)
        q_probs = qmodel.predict_proba(x)
        q_labels = qmodel.predict_batch(x)
        float_probs = model.predict_proba(x)
        errors: list[AssertionError] = []

        def quantized_worker():
            try:
                for _ in range(15):
                    assert np.array_equal(qmodel.predict_proba(x), q_probs)
                    assert np.array_equal(qmodel.predict_batch(x), q_labels)
            except AssertionError as exc:
                errors.append(exc)

        def float_worker():
            try:
                for _ in range(15):
                    assert np.array_equal(model.predict_proba(x),
                                          float_probs)
            except AssertionError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=quantized_worker)
                   for _ in range(4)]
        threads += [threading.Thread(target=float_worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
