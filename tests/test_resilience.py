"""Tests for repro.errors + repro.resilience (wrappers, faults, chaos)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import AffectDrivenSystemManager
from repro.errors import (
    BitstreamEOFError,
    BitstreamError,
    CircuitOpenError,
    ClassifierNotFitError,
    InferenceTimeoutError,
    InjectedFault,
    ReproError,
    SensorError,
)
from repro.obs import MetricsRegistry, get_registry
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ResilientClassifier,
    call_with_deadline,
    retry_with_backoff,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            BitstreamError("x"), BitstreamEOFError("x"), SensorError("x"),
            ClassifierNotFitError("x"), InferenceTimeoutError("x"),
            CircuitOpenError("x"), InjectedFault("x"),
        ):
            assert isinstance(exc, ReproError)

    def test_legacy_builtin_compatibility(self):
        assert issubclass(BitstreamError, ValueError)
        assert issubclass(BitstreamEOFError, EOFError)
        assert issubclass(SensorError, ValueError)
        assert issubclass(ClassifierNotFitError, RuntimeError)

    def test_bitstream_reader_raises_typed_eof(self):
        from repro.video.bitstream import BitReader

        with pytest.raises(BitstreamEOFError):
            BitReader(b"").read_bit()

    def test_truncated_nal_raises_typed_error(self):
        from repro.video.nal import START_CODE, split_nal_units

        with pytest.raises(BitstreamError):
            split_nal_units(START_CODE + b"\x07")

    def test_unfit_classifiers_raise_typed_error(self):
        from repro.affect.pipeline import AffectClassifierPipeline
        from repro.affect.sc_inference import SCEngagementClassifier
        from repro.datasets import generate_sc_session

        with pytest.raises(ClassifierNotFitError):
            AffectClassifierPipeline("mlp").classify_waveform(np.zeros(512))
        with pytest.raises(ClassifierNotFitError):
            SCEngagementClassifier().predict(generate_sc_session(seed=0))


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_s=5.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == "closed"
        breaker.record_failure(1.0)
        assert breaker.state == "open"
        assert not breaker.allow(2.0)
        # After the recovery window one probe is allowed (half-open).
        assert breaker.allow(6.5)
        assert breaker.state == "half_open"
        breaker.record_success(6.5)
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=2.0)
        breaker.record_failure(0.0)
        assert breaker.allow(3.0)  # half-open probe
        breaker.record_failure(3.0)
        assert breaker.state == "open"
        assert not breaker.allow(4.0)
        assert breaker.times_opened == 2

    def test_call_raises_circuit_open(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=100.0)
        with pytest.raises(InjectedFault):
            breaker.call(lambda: (_ for _ in ()).throw(InjectedFault("x")), 0.0)
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "fine", 1.0)

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == "closed"


class TestBreakerNonMonotonicClock:
    """A rewinding clock must not distort the breaker's recovery dwell."""

    def test_rewound_failure_does_not_drag_opened_at_back(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0)
        breaker.record_failure(10.0)
        assert breaker.state == "open"
        assert breaker.opened_at == 10.0
        # A failure report from a skewed clock: without the clamp this
        # rewound opened_at and collapsed the recovery window.
        breaker.record_failure(3.0)
        assert breaker.opened_at == 10.0
        assert not breaker.allow(0.0)   # rewound probe: still clamped
        assert not breaker.allow(14.0)  # dwell not yet served
        assert breaker.allow(15.0)      # full recovery_s after 10.0
        assert breaker.state == "half_open"

    def test_rewound_allow_cannot_stretch_recovery(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0)
        breaker.record_failure(10.0)
        assert breaker.allow(15.0)      # half-open probe
        breaker.record_failure(15.0)    # probe failed: reopen at 15
        assert breaker.opened_at == 15.0
        # Time runs forward again from the clamped high-water mark.
        assert not breaker.allow(19.0)
        assert breaker.allow(20.0)

    def test_nonmonotonic_now_is_counted(self):
        get_registry().reset()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0)
        breaker.record_failure(10.0)
        breaker.record_failure(3.0)     # rewound
        breaker.allow(0.0)              # rewound
        breaker.allow(11.0)             # forward: not counted
        counters = get_registry().snapshot()["counters"]
        assert counters["resilience.breaker.nonmonotonic_now"] == 2

    def test_resilient_classifier_with_rewinding_clock(self):
        calls = {"n": 0}

        def model(x):
            calls["n"] += 1
            if x == "bad":
                raise InjectedFault("crash")
            return x

        rc = ResilientClassifier(
            model,
            breaker=CircuitBreaker(failure_threshold=1, recovery_s=5.0),
            retries=0,
        )
        label, degraded = rc.classify("bad", now=10.0)
        assert degraded
        assert rc.breaker.state == "open"
        # A rewound window while open: served degraded, model untouched,
        # and the recovery window is not stretched by the bad timestamp.
        n_before = calls["n"]
        label, degraded = rc.classify("happy", now=3.0)
        assert degraded and calls["n"] == n_before
        label, degraded = rc.classify("happy", now=15.0)
        assert (label, degraded) == ("happy", False)
        assert rc.breaker.state == "closed"


class TestRetryWithBackoff:
    def test_recovers_from_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise SensorError("transient")
            return "ok"

        assert retry_with_backoff(flaky, retries=3) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_reraises(self):
        def always_bad():
            raise SensorError("down")

        with pytest.raises(SensorError):
            retry_with_backoff(always_bad, retries=2)

    def test_backoff_delays_are_exponential(self):
        delays = []

        def always_bad():
            raise SensorError("down")

        with pytest.raises(SensorError):
            retry_with_backoff(
                always_bad, retries=3, base_delay_s=0.1, factor=2.0,
                sleep=delays.append,
            )
        assert delays == [0.1, 0.2, 0.4]

    def test_unlisted_exception_not_retried(self):
        attempts = []

        def typo():
            attempts.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry_with_backoff(typo, retries=5)
        assert len(attempts) == 1


class TestDeadline:
    def test_fast_call_passes(self):
        assert call_with_deadline(lambda: 42, deadline_s=10.0) == 42

    def test_slow_call_raises_timeout(self):
        import time

        def slow():
            time.sleep(0.02)
            return 42

        with pytest.raises(InferenceTimeoutError):
            call_with_deadline(slow, deadline_s=0.001)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            call_with_deadline(lambda: 1, deadline_s=0.0)


class TestResilientClassifier:
    def test_fallback_ladder_last_good_then_neutral(self):
        calls = {"n": 0}

        def model(x):
            calls["n"] += 1
            if x == "bad":
                raise InjectedFault("crash")
            return x

        rc = ResilientClassifier(
            model, breaker=CircuitBreaker(failure_threshold=99), retries=0
        )
        # Nothing committed yet: degraded windows report neutral.
        label, degraded = rc.classify("bad", now=0.0)
        assert (label, degraded) == ("neutral", True)
        label, degraded = rc.classify("happy", now=1.0)
        assert (label, degraded) == ("happy", False)
        # Then the last good label.
        label, degraded = rc.classify("bad", now=2.0)
        assert (label, degraded) == ("happy", True)

    def test_breaker_open_skips_model_entirely(self):
        calls = {"n": 0}

        def always_crash(_):
            calls["n"] += 1
            raise InjectedFault("crash")

        rc = ResilientClassifier(
            always_crash,
            breaker=CircuitBreaker(failure_threshold=2, recovery_s=100.0),
            retries=0,
        )
        rc.classify("a", now=0.0)
        rc.classify("a", now=1.0)
        n_before = calls["n"]
        label, degraded = rc.classify("a", now=2.0)
        assert degraded and calls["n"] == n_before  # model not invoked
        assert rc.breaker.state == "open"

    def test_never_raises(self):
        def nasty(_):
            raise RuntimeError("untyped crash")

        rc = ResilientClassifier(
            nasty, breaker=CircuitBreaker(), retries=0,
            retry_exceptions=(ReproError, RuntimeError),
        )
        for k in range(6):
            label, degraded = rc.classify("x", now=float(k))
            assert degraded and label == "neutral"


class TestFaultPlan:
    def test_uniform_sets_every_rate(self):
        plan = FaultPlan.uniform(0.3)
        assert plan.sensor_nan == plan.nal_bitflip == plan.kill_storm == 0.3
        assert not plan.is_zero

    def test_zero_plan_is_zero(self):
        assert FaultPlan().is_zero
        assert FaultPlan.uniform(0.0).is_zero

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(sensor_nan=1.5)

    def test_overrides(self):
        plan = FaultPlan.uniform(0.1, kill_storm=0.9)
        assert plan.kill_storm == 0.9 and plan.sensor_nan == 0.1


class TestFaultInjector:
    def test_deterministic_for_seed(self):
        plan = FaultPlan.uniform(0.5)
        sig = np.linspace(-1, 1, 1000)
        a = FaultInjector(plan, seed=7)
        b = FaultInjector(plan, seed=7)
        for _ in range(20):
            np.testing.assert_array_equal(
                a.corrupt_signal(sig), b.corrupt_signal(sig)
            )
        assert a.counts == b.counts

    def test_zero_plan_never_fires(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        sig = np.ones(100)
        for _ in range(50):
            assert injector.corrupt_signal(sig) is sig
            assert injector.classifier_fault() == 0.0
        assert injector.total_injected == 0

    def test_nan_burst_lands_in_signal(self):
        injector = FaultInjector(FaultPlan(sensor_nan=1.0), seed=1)
        out = injector.corrupt_signal(np.zeros(1000))
        assert np.isnan(out).any()
        assert injector.counts["sensor_nan"] == 1

    def test_sensor_dropout_is_transient(self):
        injector = FaultInjector(FaultPlan(sensor_dropout=1.0), seed=0)
        with pytest.raises(SensorError):
            injector.read_sensor(lambda: np.zeros(4))

    def test_corrupt_stream_respects_protected_prefix(self):
        injector = FaultInjector(
            FaultPlan(nal_bitflip=1.0, nal_truncate=1.0), seed=3
        )
        stream = bytes(range(256)) * 4
        for _ in range(10):
            out = injector.corrupt_stream(stream, protect_prefix=64)
            assert out[:64] == stream[:64]
            assert len(out) >= 64

    def test_storm_events_sorted_and_grown(self):
        from repro.android.app import build_app_catalog
        from repro.android.monkey import LaunchEvent

        catalog = build_app_catalog(20, seed=0)
        base = [LaunchEvent(float(t), catalog[0].name, "happy")
                for t in range(5)]
        injector = FaultInjector(FaultPlan(kill_storm=1.0, kill_storm_size=4),
                                 seed=0)
        out = injector.storm_events(base, catalog)
        assert len(out) == 5 + 5 * 4
        assert all(out[i].time_s <= out[i + 1].time_s
                   for i in range(len(out) - 1))


class TestManagerStaleness:
    def test_committed_state_decays_after_ttl(self):
        mgr = AffectDrivenSystemManager(stale_ttl_s=3.0)
        for t in range(4):
            mgr.observe("happy", timestamp=float(t))
        assert mgr.current_emotion == "happy"
        assert mgr.effective_emotion(now=4.0) == "happy"
        assert mgr.effective_emotion(now=7.1) is None
        assert mgr.decoder_mode(now=7.1) == mgr.video_policy.fallback

    def test_fresh_observation_ends_staleness(self):
        mgr = AffectDrivenSystemManager(stale_ttl_s=2.0)
        for t in range(3):
            mgr.observe("happy", timestamp=float(t))
        assert mgr.effective_emotion(now=10.0) is None
        mgr.observe("happy", timestamp=10.0)
        assert mgr.effective_emotion(now=10.5) == "happy"

    def test_no_ttl_means_no_decay(self):
        mgr = AffectDrivenSystemManager()
        for t in range(3):
            mgr.observe("happy", timestamp=float(t))
        assert mgr.effective_emotion(now=1e9) == "happy"

    def test_stale_decay_counted_once(self):
        registry = get_registry()
        before = registry.counter("core.controller.stale_decays").value
        mgr = AffectDrivenSystemManager(stale_ttl_s=1.0)
        for t in range(3):
            mgr.observe("sad", timestamp=float(t))
        mgr.effective_emotion(now=100.0)
        mgr.effective_emotion(now=101.0)  # still the same dwell
        after = registry.counter("core.controller.stale_decays").value
        assert after - before == 1


class TestManagerMonotonicTimestamps:
    def test_regression_backwards_timestamp_clamped(self):
        """Regression: out-of-order timestamps corrupted mode_changes()."""
        registry = get_registry()
        before = registry.counter(
            "core.controller.nonmonotonic_timestamps"
        ).value
        mgr = AffectDrivenSystemManager()
        mgr.observe("happy", timestamp=5.0)
        mgr.observe("happy", timestamp=6.0)
        mgr.observe("happy", timestamp=2.0)   # clock skew: clamped to 6.0
        for t in (6.5, 7.0, 7.5):
            mgr.observe("sad", timestamp=t)
        after = registry.counter(
            "core.controller.nonmonotonic_timestamps"
        ).value
        assert after - before == 1
        times = [ts for ts, _ in mgr.mode_changes()]
        assert times == sorted(times)
        assert mgr.last_observation_ts == 7.5

    def test_event_timeline_never_decreases(self):
        mgr = AffectDrivenSystemManager()
        raw = [("a", 0.0), ("a", 1.0), ("a", 2.0), ("b", 1.0), ("b", 1.2),
               ("b", 3.0), ("b", 3.5)]
        for label, t in raw:
            mgr.observe(label, timestamp=t)
        stamps = [e.timestamp for e in mgr.stream.events]
        assert stamps == sorted(stamps)


class TestChaosWorkload:
    def test_zero_crashes_under_heavy_faults(self):
        from repro.resilience.chaos import run_chaos_workload

        registry = get_registry()
        registry.reset()
        stats = run_chaos_workload(seed=0, fault_rate=0.3, windows=8, clips=2)
        assert stats["crashes"] == 0
        assert stats["video"]["frames_delivered"] == stats["video"]["frames_expected"]
        assert stats["total_faults_injected"] > 0
        # Degraded dwell is reported through the registry.
        snapshot = registry.snapshot()
        assert "resilience.degraded_dwell_s" in snapshot["counters"]

    def test_deterministic_stats(self):
        from repro.resilience.chaos import run_chaos_workload

        a = run_chaos_workload(seed=3, fault_rate=0.2, windows=6, clips=1)
        b = run_chaos_workload(seed=3, fault_rate=0.2, windows=6, clips=1)
        for key in ("faults_injected", "classifier", "video", "emulator"):
            assert a[key] == b[key]

    def test_fault_free_run_is_clean(self):
        from repro.resilience.chaos import run_chaos_workload

        stats = run_chaos_workload(seed=0, fault_rate=0.0, windows=6, clips=1)
        assert stats["crashes"] == 0
        assert stats["total_faults_injected"] == 0
        assert stats["classifier"]["fallbacks"] == 0
        assert stats["video"]["units_corrupt"] == 0

    def test_cli_chaos_smoke(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--seed", "0", "--fault-rate", "0.2",
                     "--windows", "6"]) == 0
        out = capsys.readouterr().out
        assert "degraded-mode dwell" in out
        assert "unhandled crashes: 0" in out


class TestObsIsolation:
    def test_wrappers_silent_when_registry_disabled(self):
        registry = MetricsRegistry(enabled=False)
        # Wrappers use the global registry; just confirm the disabled
        # global path doesn't create metrics.
        global_registry = get_registry()
        was_enabled = global_registry.enabled
        names_before = set(global_registry.snapshot()["counters"])
        try:
            global_registry.enabled = False
            breaker = CircuitBreaker(failure_threshold=1)
            breaker.record_failure(0.0)
            with pytest.raises(SensorError):
                retry_with_backoff(
                    lambda: (_ for _ in ()).throw(SensorError("x")), retries=1
                )
        finally:
            global_registry.enabled = was_enabled
        names_after = set(global_registry.snapshot()["counters"])
        assert names_after == names_before
        assert registry.snapshot()["counters"] == {}
