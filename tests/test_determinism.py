"""Cross-process reproducibility.

Generated data must be identical across interpreter runs — in particular
independent of PYTHONHASHSEED (the builtin string hash is salted per
process; a previous revision leaked it into generator seeds).
"""

import os
import subprocess
import sys

import pytest

_SNIPPET = """
import numpy as np
from repro.datasets.speech import synthesize_utterance
from repro.datasets.biosignals import synthesize_biosignals
wave = synthesize_utterance("angry", actor=3, sentence=2, take=1)
rec = synthesize_biosignals("happy", duration_s=5)
print(repr(float(wave[1234])), repr(float(rec.ecg[456])))
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    result = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


@pytest.mark.slow
def test_generators_independent_of_hash_seed():
    assert _run_with_hashseed("1") == _run_with_hashseed("31337")
