"""Flight recorder: snapshot ring, cheap capture, incident bundles."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.alerts import AlertEvent, AlertManager, AlertRule
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLObjective
from repro.obs.trace import RetentionPolicy, Tracer


def make_tracer(sample_rate=1.0):
    return Tracer(registry=MetricsRegistry(), seed=7,
                  sample_rate=sample_rate, retention=RetentionPolicy())


def firing_page(at=1.0, rule="shed-page"):
    return AlertEvent(rule=rule, severity="page", state="firing", at=at,
                      burn_fast=20.0, burn_slow=9.0, threshold=8.0)


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(tracer=make_tracer(), capacity=0)

    def test_min_interval_must_be_non_negative(self):
        with pytest.raises(ValueError, match="min_interval_s"):
            FlightRecorder(tracer=make_tracer(), min_interval_s=-1.0)


class TestSnapshotRing:
    def test_rate_limit_keeps_one_hertz(self):
        recorder = FlightRecorder(tracer=make_tracer(), min_interval_s=1.0)
        registry = MetricsRegistry()
        kept = [recorder.record(registry, t / 4.0) for t in range(9)]
        # t=0.0 kept, 0.25..0.75 dropped, 1.0 kept, ... 2.0 kept.
        assert kept == [True, False, False, False, True,
                        False, False, False, True]
        assert [when for when, _ in recorder.snapshots] == [0.0, 1.0, 2.0]

    def test_capacity_evicts_oldest(self):
        recorder = FlightRecorder(tracer=make_tracer(), capacity=4,
                                  min_interval_s=0.0)
        registry = MetricsRegistry()
        for t in range(10):
            recorder.record(registry, float(t))
        assert [when for when, _ in recorder.snapshots] == [6.0, 7.0,
                                                            8.0, 9.0]

    def test_capture_is_cheap_and_render_is_deferred(self):
        recorder = FlightRecorder(tracer=make_tracer(), min_interval_s=0.0)
        registry = MetricsRegistry()
        registry.inc("serve.requests", 3)
        for _ in range(10):
            registry.observe("serve.latency_s", 0.2)
        recorder.record(registry, 1.0)
        [(when, snapshot)] = recorder.snapshots
        # Raw capture: no rendered quantiles, just bucket states.
        assert "histograms" not in snapshot
        assert "serve.latency_s" in snapshot["hist_states"]
        rendered = FlightRecorder._render(when, snapshot)
        assert rendered["at"] == 1.0
        summary = rendered["histograms"]["serve.latency_s"]
        assert summary["count"] == 10
        assert summary["p95"] == pytest.approx(0.2, rel=0.1)
        assert rendered["counters"]["serve.requests"] == 3


class TestBundleDump:
    def build(self, tmp_path, max_bundles=4):
        tracer = make_tracer()
        registry = tracer.registry
        recorder = FlightRecorder(tracer=tracer, min_interval_s=0.0,
                                  bundle_dir=str(tmp_path / "incidents"),
                                  max_bundles=max_bundles)
        registry.inc("serve.requests", 10)
        recorder.record(registry, 0.0)
        span = tracer.start_span("serve.window", root=True,
                                 attrs={"shed": True})
        span.end()
        registry.inc("serve.requests", 90)
        registry.inc("serve.shed", 5)
        recorder.record(registry, 1.0)
        return tracer, registry, recorder

    def test_dump_writes_a_self_contained_bundle(self, tmp_path):
        _, _, recorder = self.build(tmp_path)
        path = recorder.dump(reason="shed-page firing", at=1.0)
        assert recorder.bundles == [path]
        assert sorted(os.listdir(path)) == [
            "incident.json", "snapshots.jsonl", "trace.json"]
        incident = json.loads(
            (tmp_path / "incidents" / os.path.basename(path)
             / "incident.json").read_text())
        assert incident["reason"] == "shed-page firing"
        assert incident["snapshots"] == 2
        assert incident["counter_deltas"]["serve.requests"] == 90.0
        assert incident["retained_roots_by_reason"] == {"shed": 1}
        assert os.path.basename(path) == "incident-01-shed-page-t00001.00"

    def test_snapshots_jsonl_renders_every_line(self, tmp_path):
        _, _, recorder = self.build(tmp_path)
        path = recorder.dump(at=1.0)
        lines = [json.loads(line) for line in
                 open(os.path.join(path, "snapshots.jsonl"))]
        assert [line["at"] for line in lines] == [0.0, 1.0]
        assert lines[1]["counters"]["serve.shed"] == 5

    def test_trace_json_is_a_perfetto_document(self, tmp_path):
        _, _, recorder = self.build(tmp_path)
        path = recorder.dump(at=1.0)
        doc = json.loads(open(os.path.join(path, "trace.json")).read())
        names = [e["name"] for e in doc["traceEvents"]]
        assert "serve.window" in names
        assert "retained:shed" in names

    def test_dump_embeds_alert_timeline_when_managed(self, tmp_path):
        tracer = make_tracer()
        rule = AlertRule(
            name="shed-page",
            objective=SLObjective(name="shed", kind="ratio", metric="bad",
                                  denominator="total", threshold=0.1),
            fast_window_s=1.0, slow_window_s=3.0, burn_threshold=2.0)
        manager = AlertManager((rule,))
        recorder = FlightRecorder(tracer=tracer, manager=manager,
                                  min_interval_s=0.0,
                                  bundle_dir=str(tmp_path / "incidents"))
        registry = tracer.registry
        registry.inc("total", 100)
        manager.observe(registry, 0.0)
        registry.inc("total", 100)
        registry.inc("bad", 60)
        manager.observe(registry, 1.0)
        path = recorder.dump(at=1.0)
        incident = json.loads(
            open(os.path.join(path, "incident.json")).read())
        assert incident["alert_states"] == {"shed-page": "firing"}
        assert [e["state"] for e in incident["alert_timeline"]] == [
            "pending", "firing"]
        assert incident["alert_rules"][0]["name"] == "shed-page"


class TestAlertSink:
    def test_page_firing_auto_dumps_one_bundle(self, tmp_path):
        recorder = FlightRecorder(tracer=make_tracer(),
                                  bundle_dir=str(tmp_path / "i"))
        recorder.emit(firing_page())
        assert len(recorder.bundles) == 1
        assert "shed-page" in recorder.bundles[0]

    def test_non_page_and_non_firing_events_are_ignored(self, tmp_path):
        recorder = FlightRecorder(tracer=make_tracer(),
                                  bundle_dir=str(tmp_path / "i"))
        recorder.emit(AlertEvent(rule="shed-ticket", severity="ticket",
                                 state="firing", at=1.0, burn_fast=5.0,
                                 burn_slow=5.0, threshold=4.0))
        recorder.emit(AlertEvent(rule="shed-page", severity="page",
                                 state="pending", at=1.0, burn_fast=9.0,
                                 burn_slow=9.0, threshold=8.0))
        recorder.emit(AlertEvent(rule="shed-page", severity="page",
                                 state="resolved", at=2.0, burn_fast=0.0,
                                 burn_slow=0.0, threshold=8.0))
        assert recorder.bundles == []

    def test_max_bundles_caps_auto_dumps(self, tmp_path):
        recorder = FlightRecorder(tracer=make_tracer(), max_bundles=2,
                                  bundle_dir=str(tmp_path / "i"))
        for k in range(5):
            recorder.emit(firing_page(at=float(k)))
        assert len(recorder.bundles) == 2
